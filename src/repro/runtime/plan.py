"""Compile-once execution plans: fused dispatch, buffer arena, zero-realloc hot path.

:class:`ExecutionPlan` is the planned counterpart of
:class:`repro.runtime.executor.GraphExecutor`.  The interpreter redoes three
kinds of call-invariant work on every request:

1. **dispatch** — a handler-dict lookup and ``get_attr`` re-parsing per node,
2. **allocation** — a fresh numpy array for every intermediate value,
3. **bookkeeping** — timing guards and per-node argument marshalling.

The plan does that work once at build time instead:

* every node's handler and normalized attributes are resolved into a bound
  closure (the ``_BINDERS`` registry, the planned analogue of the
  interpreter's ``_HANDLERS``);
* a liveness analysis over the topological order assigns recyclable
  intermediates to a buffer **arena** keyed by ``(shape, dtype)`` slots —
  once a value's last consumer has run, its buffer returns to the arena and
  is handed to the next step that needs that slot, so the steady-state hot
  path performs no allocations for elementwise work;
* single-consumer elementwise/activation tails (``Conv -> Add -> Relu`` and
  friends) are **fused** into their producer's step and applied in place on
  the producer's output buffer via the ``out=`` destination-passing support
  of :mod:`repro.runtime.functional`;
* the **heavy operators** — conv (incl. grouped/depthwise/transposed),
  GEMM/MatMul and the pooling kernels — also run destination-passing:
  their outputs come from the same liveness-managed arena, and their
  internal scratch (padded input, im2col columns, post-GEMM staging) is
  leased per call from arena-backed per-node workspaces, shared across
  nodes by ``(shape, dtype)`` slot.  Weight-derived GEMM layouts are
  cached per initializer array, so the warm hot path is allocation-free
  end to end, heavy ops included.

Because every step calls the same :mod:`repro.runtime.functional` kernels as
the interpreter — only with precomputed arguments and destinations — plan
outputs are bitwise-identical to :class:`GraphExecutor` outputs, which the
differential tests in ``tests/test_execution_plan.py`` assert on the whole
model zoo.  ``GraphExecutor`` remains the semantic ground truth.

Shape specialization is lazy: the first run under a given input signature
executes without destinations and records each step's observed output shape
and dtype; subsequent runs under the same signature reuse arena buffers.
Serving traffic with a handful of distinct batch sizes therefore reaches the
zero-realloc steady state after one warm run per signature.

Graph outputs — which must stay private to the caller and therefore never
come from the arena — accept caller-owned destinations via ``run(feed,
out={name: buffer})`` (surfaced as :class:`repro.runtime.session.Session`'s
``IOBinding``): destination-capable producers write the output in place,
closing the last per-run allocation of the warm hot path.
"""

from __future__ import annotations

import threading
import time
import types
import weakref
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

import repro.runtime.functional as F
from repro.graph.traversal import topological_sort_nodes
from repro.ir.model import Graph, Model
from repro.ir.node import OpNode
from repro.runtime.executor import _HANDLERS, ExecutionError

__all__ = ["ExecutionPlan", "PlanError"]


class PlanError(ExecutionError):
    """Raised when a plan cannot be built or executed."""


#: Ops whose outputs may alias (view or be) their first input's memory.  The
#: arena must never recycle a buffer while a view of it is live, so outputs
#: of these ops share a storage group with their input and a storage is only
#: recycled when every name in the group is dead.
_ALIAS_OPS = frozenset({
    "Identity", "Reshape", "Transpose", "Flatten", "Squeeze", "Unsqueeze",
    "Slice", "Split", "Dropout", "Tile", "Expand", "Upsample", "Resize",
})

#: Ops that must not head a fused chain: alias ops (their output shares
#: memory with a live input) and Constant (its bound closure returns the
#: same cached array on every run — an in-place tail would corrupt it).
_NONFUSABLE_HEADS = _ALIAS_OPS | {"Constant"}

#: Unary ops with exact ``out=`` destination support in the functional
#: namespace (all single-ufunc kernels; results are bitwise-identical with
#: and without a destination).
_OUT_UNARY: Dict[str, Callable] = {
    "Relu": F.relu, "Sigmoid": F.sigmoid, "Tanh": F.tanh, "Erf": F.erf,
    "Softplus": F.softplus, "Sqrt": F.sqrt, "Exp": F.exp, "Log": F.log,
    "Neg": F.neg, "Abs": F.abs_, "Reciprocal": F.reciprocal,
    "Floor": F.floor, "Ceil": F.ceil, "Round": F.round_, "Sign": F.sign,
    "Cos": F.cos, "Sin": F.sin,
}

#: Binary ops with exact ``out=`` destination support.
_OUT_BINARY: Dict[str, Callable] = {
    "Add": F.add, "Sub": F.sub, "Mul": F.mul, "Div": F.div, "Pow": F.pow_,
    "Mod": F.mod, "Min": F.minimum, "Max": F.maximum,
}


class _ArenaWorkspace:
    """Scratch provider backed by the plan's buffer arena.

    Implements the ``take``/``reset`` protocol of
    :class:`repro.runtime.tensor_utils.Workspace`, but leases buffers from
    the shared ``(shape, dtype)`` arena pools — so the im2col columns,
    padded inputs and GEMM staging buffers of *different* nodes share
    storage whenever their slots match, and the warm steady state performs
    zero scratch allocations.  Heavy kernels reset the workspace before
    returning, which releases every leased buffer back to the arena.
    """

    __slots__ = ("_arena", "_taken")

    def __init__(self, arena: "_Arena") -> None:
        self._arena = arena
        self._taken: List[np.ndarray] = []

    def take(self, shape, dtype=np.float32) -> np.ndarray:
        buffer = self._arena.acquire(tuple(int(s) for s in shape),
                                     np.dtype(dtype))
        self._taken.append(buffer)
        return buffer

    def reset(self) -> None:
        taken, self._taken = self._taken, []
        for buffer in taken:
            self._arena.release(buffer)


# ---------------------------------------------------------------------------
# Heavy destination-passing kernels: op type -> (node, arena) -> kernel
# ---------------------------------------------------------------------------
#: Makers for the heavy operators (conv / GEMM / pooling) that accept an
#: ``out=`` destination plus an arena-backed ``workspace=`` scratch
#: provider.  Together with the elementwise ``_OUT_*`` tables these make
#: every step of a typical CNN destination-passing, extending the
#: zero-realloc property to the kernels that dominate the cost model.
_HeavyMaker = Callable[[OpNode, "_Arena"], Callable]
_HEAVY_MAKERS: Dict[str, _HeavyMaker] = {}


def _heavy(op_type: str) -> Callable[[_HeavyMaker], _HeavyMaker]:
    def wrap(fn: _HeavyMaker) -> _HeavyMaker:
        _HEAVY_MAKERS[op_type] = fn
        return fn

    return wrap


@_heavy("Conv")
def _heavy_conv(node: OpNode, arena: "_Arena") -> Callable:
    strides = node.get_attr("strides", [1, 1])
    pads = node.get_attr("pads", [0, 0, 0, 0])
    dilations = node.get_attr("dilations", [1, 1])
    group = int(node.get_attr("group", 1))
    ws = _ArenaWorkspace(arena)

    def kernel(args, out):
        bias = args[2] if len(args) > 2 else None
        return F.conv2d(args[0], args[1], bias, strides=strides, pads=pads,
                        dilations=dilations, group=group, out=out, workspace=ws)

    return kernel


@_heavy("ConvTranspose")
def _heavy_conv_transpose(node: OpNode, arena: "_Arena") -> Callable:
    strides = node.get_attr("strides", [1, 1])
    pads = node.get_attr("pads", [0, 0, 0, 0])
    output_padding = node.get_attr("output_padding", [0, 0])
    group = int(node.get_attr("group", 1))
    ws = _ArenaWorkspace(arena)

    def kernel(args, out):
        bias = args[2] if len(args) > 2 else None
        return F.conv_transpose2d(args[0], args[1], bias, strides=strides,
                                  pads=pads, output_padding=output_padding,
                                  group=group, out=out, workspace=ws)

    return kernel


@_heavy("Gemm")
def _heavy_gemm(node: OpNode, arena: "_Arena") -> Callable:  # noqa: ARG001
    alpha = float(node.get_attr("alpha", 1.0))
    beta = float(node.get_attr("beta", 1.0))
    trans_a = bool(node.get_attr("transA", 0))
    trans_b = bool(node.get_attr("transB", 0))

    def kernel(args, out):
        c = args[2] if len(args) > 2 else None
        return F.gemm(args[0], args[1], c, alpha=alpha, beta=beta,
                      trans_a=trans_a, trans_b=trans_b, out=out)

    return kernel


@_heavy("MatMul")
def _heavy_matmul(node: OpNode, arena: "_Arena") -> Callable:  # noqa: ARG001
    return lambda args, out: F.matmul(args[0], args[1], out=out)


def _heavy_pool(fn, include_count: bool) -> _HeavyMaker:
    def make(node: OpNode, arena: "_Arena") -> Callable:
        kernel_shape = node.get_attr("kernel_shape", [1, 1])
        strides = node.get_attr("strides", [1, 1])
        pads = node.get_attr("pads", [0, 0, 0, 0])
        ceil_mode = bool(node.get_attr("ceil_mode", 0))
        ws = _ArenaWorkspace(arena)
        if include_count:
            count = bool(node.get_attr("count_include_pad", 0))
            return lambda args, out: fn(args[0], kernel=kernel_shape,
                                        strides=strides, pads=pads,
                                        ceil_mode=ceil_mode,
                                        count_include_pad=count,
                                        out=out, workspace=ws)
        return lambda args, out: fn(args[0], kernel=kernel_shape,
                                    strides=strides, pads=pads,
                                    ceil_mode=ceil_mode, out=out, workspace=ws)

    return make


_HEAVY_MAKERS["MaxPool"] = _heavy_pool(F.max_pool2d, include_count=False)
_HEAVY_MAKERS["AveragePool"] = _heavy_pool(F.avg_pool2d, include_count=True)


def _output_dest_kernel(node: OpNode) -> Optional[Callable]:
    """Destination kernels used *only* for graph-output producers.

    These ops are not fusable tails (their internals allocate regardless),
    but their final store supports an exact ``out=`` — enough to land a
    graph output directly in a caller-bound buffer.  Kept separate from
    :func:`_out_kernel` so adding one never changes fusion decisions.
    """
    if node.op_type in ("Softmax", "LogSoftmax"):
        fn = F.softmax if node.op_type == "Softmax" else F.log_softmax
        axis = int(node.get_attr("axis", -1))
        return lambda args, out, fn=fn, axis=axis: fn(args[0], axis=axis, out=out)
    if node.op_type == "Concat":
        axis = int(node.get_attr("axis", 0))
        return lambda args, out, axis=axis: F.concat(args, axis=axis, out=out)
    return None


def _out_kernel(node: OpNode) -> Optional[Callable]:
    """A ``kernel(args, out) -> array`` for out-capable nodes, else None."""
    fn = _OUT_UNARY.get(node.op_type)
    if fn is not None:
        return lambda args, out, fn=fn: fn(args[0], out=out)
    fn = _OUT_BINARY.get(node.op_type)
    if fn is not None:
        return lambda args, out, fn=fn: fn(args[0], args[1], out=out)
    if node.op_type == "Clip" and len(node.present_inputs) == 1:
        lo = node.get_attr("min")
        hi = node.get_attr("max")
        lo = None if lo is None else float(np.asarray(lo))
        hi = None if hi is None else float(np.asarray(hi))
        return lambda args, out, lo=lo, hi=hi: F.clip(args[0], lo, hi, out=out)
    return None


# ---------------------------------------------------------------------------
# Bound-closure binders: op type -> (node -> kernel(args) -> [outputs])
# ---------------------------------------------------------------------------
_Binder = Callable[[OpNode], Callable[[List[np.ndarray]], List[np.ndarray]]]
_BINDERS: Dict[str, _Binder] = {}


def _binder(op_type: str) -> Callable[[_Binder], _Binder]:
    def wrap(fn: _Binder) -> _Binder:
        _BINDERS[op_type] = fn
        return fn

    return wrap


@_binder("Conv")
def _bind_conv(node: OpNode):
    strides = node.get_attr("strides", [1, 1])
    pads = node.get_attr("pads", [0, 0, 0, 0])
    dilations = node.get_attr("dilations", [1, 1])
    group = int(node.get_attr("group", 1))

    def run(args):
        bias = args[2] if len(args) > 2 else None
        return [F.conv2d(args[0], args[1], bias, strides=strides, pads=pads,
                         dilations=dilations, group=group)]

    return run


@_binder("ConvTranspose")
def _bind_conv_transpose(node: OpNode):
    strides = node.get_attr("strides", [1, 1])
    pads = node.get_attr("pads", [0, 0, 0, 0])
    output_padding = node.get_attr("output_padding", [0, 0])
    group = int(node.get_attr("group", 1))

    def run(args):
        bias = args[2] if len(args) > 2 else None
        return [F.conv_transpose2d(args[0], args[1], bias, strides=strides,
                                   pads=pads, output_padding=output_padding,
                                   group=group)]

    return run


def _bind_pool(fn, include_count: bool) -> _Binder:
    def bind(node: OpNode):
        kernel = node.get_attr("kernel_shape", [1, 1])
        strides = node.get_attr("strides", [1, 1])
        pads = node.get_attr("pads", [0, 0, 0, 0])
        ceil_mode = bool(node.get_attr("ceil_mode", 0))
        if include_count:
            count = bool(node.get_attr("count_include_pad", 0))
            return lambda args: [fn(args[0], kernel=kernel, strides=strides,
                                    pads=pads, ceil_mode=ceil_mode,
                                    count_include_pad=count)]
        return lambda args: [fn(args[0], kernel=kernel, strides=strides,
                                pads=pads, ceil_mode=ceil_mode)]

    return bind


_BINDERS["MaxPool"] = _bind_pool(F.max_pool2d, include_count=False)
_BINDERS["AveragePool"] = _bind_pool(F.avg_pool2d, include_count=True)


@_binder("Gemm")
def _bind_gemm(node: OpNode):
    alpha = float(node.get_attr("alpha", 1.0))
    beta = float(node.get_attr("beta", 1.0))
    trans_a = bool(node.get_attr("transA", 0))
    trans_b = bool(node.get_attr("transB", 0))

    def run(args):
        c = args[2] if len(args) > 2 else None
        return [F.gemm(args[0], args[1], c, alpha=alpha, beta=beta,
                       trans_a=trans_a, trans_b=trans_b)]

    return run


@_binder("BatchNormalization")
def _bind_batchnorm(node: OpNode):
    epsilon = float(node.get_attr("epsilon", 1e-5))
    return lambda args: [F.batch_norm(args[0], args[1], args[2], args[3],
                                      args[4], epsilon=epsilon)]


@_binder("LayerNormalization")
def _bind_layernorm(node: OpNode):
    axis = int(node.get_attr("axis", -1))
    epsilon = float(node.get_attr("epsilon", 1e-5))

    def run(args):
        bias = args[2] if len(args) > 2 else None
        return [F.layer_norm(args[0], args[1], bias, axis=axis, epsilon=epsilon)]

    return run


@_binder("InstanceNormalization")
def _bind_instancenorm(node: OpNode):
    epsilon = float(node.get_attr("epsilon", 1e-5))
    return lambda args: [F.instance_norm(args[0], args[1], args[2], epsilon=epsilon)]


def _bind_axis(fn, default_axis: int) -> _Binder:
    def bind(node: OpNode):
        axis = int(node.get_attr("axis", default_axis))
        return lambda args: [fn(args[0], axis=axis)]

    return bind


_BINDERS["Softmax"] = _bind_axis(F.softmax, -1)
_BINDERS["LogSoftmax"] = _bind_axis(F.log_softmax, -1)
_BINDERS["Flatten"] = _bind_axis(F.flatten, 1)


@_binder("LeakyRelu")
def _bind_leaky_relu(node: OpNode):
    alpha = float(node.get_attr("alpha", 0.01))
    return lambda args: [F.leaky_relu(args[0], alpha=alpha)]


@_binder("Elu")
def _bind_elu(node: OpNode):
    alpha = float(node.get_attr("alpha", 1.0))
    return lambda args: [F.elu(args[0], alpha=alpha)]


@_binder("HardSigmoid")
def _bind_hard_sigmoid(node: OpNode):
    alpha = float(node.get_attr("alpha", 0.2))
    beta = float(node.get_attr("beta", 0.5))
    return lambda args: [F.hard_sigmoid(args[0], alpha=alpha, beta=beta)]


@_binder("Concat")
def _bind_concat(node: OpNode):
    axis = int(node.get_attr("axis", 0))
    return lambda args: [F.concat(args, axis=axis)]


@_binder("Transpose")
def _bind_transpose(node: OpNode):
    perm = node.get_attr("perm")
    return lambda args: [F.transpose(args[0], perm)]


@_binder("Gather")
def _bind_gather(node: OpNode):
    axis = int(node.get_attr("axis", 0))
    return lambda args: [F.gather(args[0], args[1], axis=axis)]


@_binder("Cast")
def _bind_cast(node: OpNode):
    to = node.get_attr("to", "float32")
    return lambda args: [F.cast(args[0], to=to)]


@_binder("Constant")
def _bind_constant(node: OpNode):
    value = node.get_attr("value")
    if value is None:
        raise PlanError(f"Constant node {node.name} has no value attribute")
    array = np.asarray(value)
    return lambda args: [array]


@_binder("Reshape")
def _bind_reshape(node: OpNode):
    shape = node.get_attr("shape")
    if shape is not None and len(node.present_inputs) == 1:
        target = np.asarray(shape)
        return lambda args: [F.reshape(args[0], target)]
    return lambda args: [F.reshape(args[0], args[1])]


# Attribute-free unary/binary ops bind straight to their kernel, skipping
# even the generic handler indirection.
for _op, _fn in _OUT_UNARY.items():
    if _op not in _BINDERS:
        _BINDERS[_op] = (lambda fn: (lambda node: (lambda args: [fn(args[0])])))(_fn)
for _op, _fn in _OUT_BINARY.items():
    if _op not in _BINDERS:
        _BINDERS[_op] = (lambda fn: (lambda node: (lambda args: [fn(args[0], args[1])])))(_fn)


def _bind_node(node: OpNode) -> Callable[[List[np.ndarray]], List[np.ndarray]]:
    """Resolve a node into a bound kernel, falling back to the interpreter
    handler (with its per-call attribute parsing) for the long tail."""
    binder = _BINDERS.get(node.op_type)
    if binder is not None:
        return binder(node)
    handler = _HANDLERS.get(node.op_type)
    if handler is None:
        raise PlanError(f"no handler for op {node.op_type!r} (node {node.name})")
    return lambda args, node=node, handler=handler: handler(node, args)


# ---------------------------------------------------------------------------
# Buffer arena
# ---------------------------------------------------------------------------
class _Arena:
    """Pools of reusable buffers keyed by ``(shape, dtype)`` slots.

    Only buffers the arena itself allocated (or adopted after a first,
    specializing run) are ever recycled; kernel-allocated arrays pass
    through untouched.  Ownership is tracked with identity-checked weak
    references so a garbage-collected buffer can never be confused with an
    unrelated array that reuses its ``id``.
    """

    __slots__ = ("pools", "owned", "allocations", "reuses", "__weakref__")

    def __init__(self) -> None:
        self.pools: Dict[Tuple, List[np.ndarray]] = {}
        self.owned: Dict[int, "weakref.ref"] = {}
        self.allocations = 0
        self.reuses = 0

    def acquire(self, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        pool = self.pools.get((shape, dtype))
        if pool:
            self.reuses += 1
            return pool.pop()
        self.allocations += 1
        buffer = np.empty(shape, dtype)
        self.adopt(buffer)
        return buffer

    def adopt(self, array: np.ndarray) -> None:
        key = id(array)

        def drop(ref, key=key, owned=self.owned):
            if owned.get(key) is ref:
                del owned[key]

        self.owned[key] = weakref.ref(array, drop)

    def is_owned(self, array: np.ndarray) -> bool:
        ref = self.owned.get(id(array))
        return ref is not None and ref() is array

    def release(self, array: np.ndarray) -> None:
        if self.is_owned(array):
            self.pools.setdefault((array.shape, array.dtype), []).append(array)

    def stats(self) -> Dict[str, int]:
        return {
            "allocations": self.allocations,
            "reuses": self.reuses,
            "slots": len(self.pools),
            "pooled": sum(len(pool) for pool in self.pools.values()),
        }


# ---------------------------------------------------------------------------
# Step construction
# ---------------------------------------------------------------------------
#: Buffers below this size are cheaper to malloc than to round-trip through
#: the arena's bookkeeping; steps whose output is smaller stay on the plain
#: allocating path (measured crossover is well under one 4 KB page).
_ARENA_MIN_BYTES = 4096

_MISSING = object()


class _TailOp:
    """One fused elementwise/activation op applied on the chain buffer.

    The first execution under a given input signature runs out-of-place and
    records whether the result matches the chain buffer's shape and dtype;
    when it does, subsequent executions run in place on the chain buffer,
    which is private to the fused step (the fused intermediate has exactly
    one consumer and is not a graph output).  The last-seen signature is
    kept in dedicated slots so the steady state compares shapes directly
    instead of building a key tuple per call.
    """

    __slots__ = ("kernel", "other_name", "chain_first", "spec",
                 "last_key", "last_in_place")

    def __init__(self, kernel: Callable, other_name: Optional[str],
                 chain_first: bool) -> None:
        self.kernel = kernel
        self.other_name = other_name
        self.chain_first = chain_first
        self.spec: Dict[Tuple, bool] = {}
        self.last_key: Optional[Tuple] = None
        self.last_in_place = False

    def apply(self, values: Dict[str, np.ndarray], chain: np.ndarray) -> np.ndarray:
        if self.other_name is None:
            args = (chain,)
            key = (chain.shape, chain.dtype)
        else:
            other = values[self.other_name]
            args = (chain, other) if self.chain_first else (other, chain)
            key = (chain.shape, chain.dtype, other.shape, other.dtype)
        if key == self.last_key:
            if self.last_in_place:
                return self.kernel(args, chain)
            return np.asarray(self.kernel(args, None))
        in_place = self.spec.get(key, _MISSING)
        if in_place is _MISSING:
            result = np.asarray(self.kernel(args, None))
            # In-place needs a real, matching ndarray destination — numpy
            # scalars (e.g. a keepdims=0 reduction head) report shape/dtype
            # but cannot be ``out=`` targets.
            in_place = (type(chain) is np.ndarray
                        and result.shape == chain.shape
                        and result.dtype == chain.dtype)
            self.spec[key] = in_place
            self.last_key, self.last_in_place = key, in_place
            return result
        self.last_key, self.last_in_place = key, in_place
        if in_place:
            return self.kernel(args, chain)
        return np.asarray(self.kernel(args, None))


def _make_plain_head(kernel: Callable, in_names: Sequence[str]) -> Callable:
    in_names = tuple(in_names)
    if len(in_names) == 1:
        name = in_names[0]
        return lambda values: kernel([values[name]])[0]
    return lambda values: kernel([values[n] for n in in_names])[0]


def _make_arena_head(out_kernel: Callable, in_names: Sequence[str],
                     arena: _Arena) -> Callable:
    """A head that computes into an arena buffer once specialized.

    The first run under an input signature executes without a destination
    and records the observed output slot; when the output is big enough to
    be worth recycling, the fresh result is adopted into the arena and
    later runs under the same signature acquire a pooled buffer for the
    slot and pass it as ``out=``.  Small outputs stay on the plain
    allocating path — malloc is cheaper than arena bookkeeping there.
    """
    in_names = tuple(in_names)
    spec: Dict[Tuple, Optional[Tuple]] = {}

    def specialize(args, key):
        result = np.asarray(out_kernel(args, None))
        if result.nbytes >= _ARENA_MIN_BYTES:
            spec[key] = (result.shape, result.dtype)
            arena.adopt(result)
        else:
            spec[key] = None
        return result

    if len(in_names) == 1:
        name = in_names[0]

        def head(values):
            a = values[name]
            key = (a.shape, a.dtype)
            slot = spec.get(key, _MISSING)
            if slot is _MISSING:
                return specialize((a,), key)
            if slot is None:
                return np.asarray(out_kernel((a,), None))
            return out_kernel((a,), arena.acquire(*slot))
    elif len(in_names) == 2:
        name_a, name_b = in_names

        def head(values):
            a = values[name_a]
            b = values[name_b]
            key = (a.shape, a.dtype, b.shape, b.dtype)
            slot = spec.get(key, _MISSING)
            if slot is _MISSING:
                return specialize((a, b), key)
            if slot is None:
                return np.asarray(out_kernel((a, b), None))
            return out_kernel((a, b), arena.acquire(*slot))
    else:
        def head(values):
            args = [values[n] for n in in_names]
            key = tuple((a.shape, a.dtype) for a in args)
            slot = spec.get(key, _MISSING)
            if slot is _MISSING:
                return specialize(args, key)
            if slot is None:
                return np.asarray(out_kernel(args, None))
            return out_kernel(args, arena.acquire(*slot))

    return head


def _make_dest_head(kernel: Callable, in_names: Sequence[str]) -> Callable:
    """A head that computes straight into a caller-bound output buffer.

    Like :func:`_make_arena_head`, the first run under an input signature
    executes without a destination and records the observed output slot;
    once specialized, a matching bound buffer is passed as ``out=`` and the
    kernel writes the graph output in place — no per-run allocation, no
    end-of-run copy.  A mismatched buffer falls back to the allocating
    path; the run-level finalization then copies (and reports the shape or
    dtype error).
    """
    in_names = tuple(in_names)
    spec: Dict[Tuple, Tuple] = {}

    def head(values, buf):
        args = [values[n] for n in in_names]
        key = tuple((a.shape, a.dtype) for a in args)
        slot = spec.get(key)
        if slot is None:
            result = np.asarray(kernel(args, None))
            spec[key] = (result.shape, result.dtype)
            return result
        if (type(buf) is np.ndarray and buf.shape == slot[0]
                and buf.dtype == slot[1]):
            return kernel(args, buf)
        return np.asarray(kernel(args, None))

    return head


def _make_step(head: Callable, tail: List[_TailOp], out_name: str,
               dest_head: Optional[Callable] = None) -> Callable:
    """Compile one step; ``dest`` maps graph-output names to bound buffers.

    Steps that produce a graph output through a destination-capable head
    consult ``dest`` and compute directly into the bound buffer; fused
    tails then apply in place on it, so the chain's final value *is* the
    caller's buffer in the warm steady state.
    """
    if dest_head is None:
        if not tail:
            def step(values, dest):
                values[out_name] = head(values)
        else:
            def step(values, dest):
                chain = head(values)
                for op in tail:
                    chain = op.apply(values, chain)
                values[out_name] = chain
    else:
        if not tail:
            def step(values, dest):
                buf = dest.get(out_name)
                if buf is None:
                    values[out_name] = head(values)
                else:
                    values[out_name] = dest_head(values, buf)
        else:
            def step(values, dest):
                buf = dest.get(out_name)
                chain = head(values) if buf is None else dest_head(values, buf)
                for op in tail:
                    chain = op.apply(values, chain)
                values[out_name] = chain
    return step


def _make_multi_step(kernel: Callable, in_names: Sequence[str],
                     out_names: Sequence[str]) -> Callable:
    in_names = tuple(in_names)
    out_names = tuple(out_names)

    def step(values, dest):
        results = kernel([values[n] for n in in_names])
        for name, value in zip(out_names, results):
            if name:
                values[name] = value

    return step


# ---------------------------------------------------------------------------
# The plan
# ---------------------------------------------------------------------------
class ExecutionPlan:
    """A precompiled, reusable execution schedule for one IR model.

    Parameters
    ----------
    model:
        An IR :class:`Model` or bare :class:`Graph`.
    fuse:
        Fuse single-consumer elementwise/activation tails into their
        producer's step (disable for 1:1 node<->step tracing, e.g. when
        profiling).
    check_supported:
        Raise at build time for ops without a handler.
    heavy_out:
        Route the heavy operators (conv / GEMM / pooling) through their
        destination-passing kernels with arena-backed workspaces.  Disable
        to get the PR-3-era behaviour where heavy nodes allocate their
        outputs and scratch per run (used as the baseline by the
        throughput benchmark).

    A plan is cheap to build (one topological sort plus one closure per
    node) and safe to run repeatedly; runs are serialized by an internal
    lock because the buffer arena is per-plan state.
    """

    def __init__(self, model, fuse: bool = True, check_supported: bool = True,
                 heavy_out: bool = True, tracer=None) -> None:
        self.graph: Graph = model.graph if isinstance(model, Model) else model
        self.model_name = model.name if isinstance(model, Model) else self.graph.name
        order = topological_sort_nodes(self.graph)
        if check_supported:
            missing = sorted({n.op_type for n in order} - set(_HANDLERS))
            if missing:
                raise PlanError(f"no handlers for ops: {missing}")
        self._arena = _Arena()
        self._lock = threading.Lock()
        self._cluster_module = None
        self.fused = fuse
        self.heavy_out = heavy_out
        self._build(order, fuse)
        #: the step loop actually executed by :meth:`run`.  The untraced
        #: loop is compiled once here; :meth:`enable_tracing` swaps in a
        #: separately compiled traced loop, so the default hot path never
        #: pays a per-step tracing branch — only one attribute load per run.
        self._exec_untraced = self._compile_exec()
        self._exec = self._exec_untraced
        self._tracer = None
        if tracer is not None:
            self.enable_tracing(tracer)

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def _build(self, order: List[OpNode], fuse: bool) -> None:
        graph = self.graph
        output_set = set(graph.output_names)
        producer_index: Dict[str, int] = {}
        uses: Dict[str, int] = {}
        consumer: Dict[str, Tuple[int, OpNode]] = {}
        for name in list(graph.input_names) + list(graph.initializers):
            producer_index[name] = -1
        for index, node in enumerate(order):
            for name in node.present_inputs:
                uses[name] = uses.get(name, 0) + 1
                consumer[name] = (index, node)
            for name in node.outputs:
                if name:
                    producer_index[name] = index
        for name in output_set:
            uses[name] = uses.get(name, 0) + 1

        def single_output(node: OpNode) -> Optional[str]:
            outs = [o for o in node.outputs if o]
            return outs[0] if len(outs) == 1 else None

        # -- fusion: absorb single-consumer out-capable tails ----------
        max_tail = 8
        absorbed: Dict[str, OpNode] = {}  # node name -> chain head node
        chains: Dict[str, List[OpNode]] = {}
        if fuse:
            for index, node in enumerate(order):
                if node.name in absorbed or node.op_type in _NONFUSABLE_HEADS:
                    continue
                head_out = single_output(node)
                if head_out is None:
                    continue
                tail_nodes: List[OpNode] = []
                current_out = head_out
                while len(tail_nodes) < max_tail:
                    if uses.get(current_out, 0) != 1 or current_out in output_set:
                        break
                    cons_index, cons = consumer[current_out]
                    cons_out = single_output(cons)
                    if cons_out is None or _out_kernel(cons) is None:
                        break
                    operands = cons.present_inputs
                    if operands.count(current_out) != 1 or len(operands) > 2:
                        break
                    # Every other operand must already be computed when the
                    # fused step runs at the head's position in the order.
                    others = [n for n in operands if n != current_out]
                    if any(producer_index.get(n, index) >= index for n in others):
                        break
                    tail_nodes.append(cons)
                    absorbed[cons.name] = node
                    current_out = cons_out
                if tail_nodes:
                    chains[node.name] = tail_nodes

        # -- steps -----------------------------------------------------
        steps: List[Callable] = []
        step_nodes: List[List[OpNode]] = []
        step_reads: List[List[str]] = []
        step_writes: List[List[str]] = []
        for node in order:
            if node.name in absorbed:
                continue
            tail_nodes = chains.get(node.name, [])
            nodes = [node] + tail_nodes
            reads = list(node.present_inputs)
            fused_away = {single_output(n) for n in nodes[:-1]} if tail_nodes else set()
            for tail_node in tail_nodes:
                reads.extend(n for n in tail_node.present_inputs
                             if n not in fused_away)
            final_out = single_output(nodes[-1])
            writes = ([final_out] if tail_nodes
                      else [o for o in node.outputs if o])
            step_nodes.append(nodes)
            step_reads.append(reads)
            step_writes.append(writes)

        # -- storage groups and liveness -------------------------------
        storage_of: Dict[str, int] = {}
        storage_owner: List[str] = []
        storage_recyclable: List[bool] = []

        def new_storage(name: str, recyclable: bool) -> int:
            storage_of[name] = len(storage_owner)
            storage_owner.append(name)
            storage_recyclable.append(recyclable)
            return storage_of[name]

        for name in list(graph.input_names) + list(graph.initializers):
            new_storage(name, recyclable=False)
        for nodes, writes in zip(step_nodes, step_writes):
            producer = nodes[-1] if len(nodes) > 1 else nodes[0]
            for name in writes:
                if producer.op_type in _ALIAS_OPS and producer.present_inputs:
                    # Join the input's storage group so the whole group's
                    # liveness governs recycling.  (The base is always known
                    # here — fused intermediates have a single, non-alias
                    # consumer — but fall back to a fresh non-recyclable
                    # storage rather than corrupting the grouping.)
                    base = producer.present_inputs[0]
                    sid = storage_of.get(base)
                    if sid is None:
                        sid = new_storage(base, recyclable=False)
                    storage_of[name] = sid
                else:
                    new_storage(name, recyclable=True)
        for name in output_set:
            sid = storage_of.get(name)
            if sid is not None:
                storage_recyclable[sid] = False

        last_use: Dict[int, int] = {}
        for step_index, (reads, writes) in enumerate(zip(step_reads, step_writes)):
            for name in reads + writes:
                sid = storage_of.get(name)
                if sid is not None:
                    last_use[sid] = step_index
        release_after: List[List[str]] = [[] for _ in step_nodes]
        for sid, step_index in last_use.items():
            if storage_recyclable[sid]:
                release_after[step_index].append(storage_owner[sid])

        # -- compile steps to closures ---------------------------------
        fused_node_count = 0
        self._arena_step_count = 0
        self._heavy_step_count = 0
        self._bindable_outputs = 0
        for nodes, writes in zip(step_nodes, step_writes):
            node = nodes[0]
            tail_nodes = nodes[1:]
            if tail_nodes:
                fused_node_count += len(tail_nodes)
                tail = []
                chain_value = single_output(node)
                for tail_node in tail_nodes:
                    kernel = _out_kernel(tail_node)
                    operands = tail_node.present_inputs
                    if len(operands) == 1:
                        tail.append(_TailOp(kernel, None, True))
                    else:
                        chain_first = operands[0] == chain_value
                        other = operands[1] if chain_first else operands[0]
                        tail.append(_TailOp(kernel, other, chain_first))
                    chain_value = single_output(tail_node)
                head = self._make_head(node, writes[0], storage_of,
                                       storage_recyclable)
                if head is None:
                    head = _make_plain_head(_bind_node(node), node.present_inputs)
                dest_head = self._make_output_dest_head(node, writes[0],
                                                        output_set)
                steps.append(_make_step(head, tail, writes[0], dest_head))
            else:
                out_names = [o for o in node.outputs if o]
                if len(out_names) == 1:
                    head = self._make_head(node, out_names[0], storage_of,
                                           storage_recyclable)
                    if head is None:
                        head = _make_plain_head(_bind_node(node),
                                                node.present_inputs)
                    dest_head = self._make_output_dest_head(node, out_names[0],
                                                            output_set)
                    steps.append(_make_step(head, [], out_names[0], dest_head))
                else:
                    steps.append(_make_multi_step(_bind_node(node),
                                                  node.present_inputs,
                                                  node.outputs))

        self._steps = steps
        self._step_nodes = step_nodes
        self._release_after = release_after
        #: per-step span labels + args, precomputed at build time so the
        #: traced loop emits without any per-step string formatting
        self._step_labels: List[str] = []
        self._step_span_args: List[Dict[str, str]] = []
        for nodes in step_nodes:
            head = nodes[0]
            self._step_labels.append(f"{head.op_type}:{head.name}")
            span_args = {"op": head.op_type, "node": head.name}
            if len(nodes) > 1:
                span_args["fused"] = "+".join(n.op_type for n in nodes[1:])
            self._step_span_args.append(span_args)
        self._num_nodes = len(order)
        self._fused_node_count = fused_node_count
        self._init_values = dict(graph.initializers)
        self._init_arrays = [array for array in self._init_values.values()
                             if isinstance(array, np.ndarray)]
        #: bound-output buffers already cleared against the (immutable)
        #: initializer set, so a warm binding loop pays the O(#weights)
        #: overlap sweep once per buffer, not per run.  Identity-checked
        #: weakrefs, as in :class:`_Arena`, so a freed buffer can never be
        #: confused with a new array reusing its ``id``.
        self._init_safe: Dict[int, "weakref.ref"] = {}
        self._input_names = list(graph.input_names)
        self._output_names = list(graph.output_names)
        self._output_set = output_set
        self._storage_of = storage_of
        self._dest_direct_writes = 0
        self._dest_copy_writes = 0

    def _make_output_dest_head(self, node: OpNode, out_name: str,
                               output_set: set) -> Optional[Callable]:
        """A caller-destination head for graph-output producers, else None.

        Covers every out-capable elementwise/activation op, the heavy
        conv/GEMM/pooling kernels (when ``heavy_out`` is on) and the
        output-only destination kernels (Softmax/LogSoftmax/Concat).
        Producers without destination support (alias ops, Constant, the
        long tail) return None; their bound outputs are finalized by an
        end-of-run copy instead.
        """
        if out_name not in output_set:
            return None
        kernel = _out_kernel(node)
        if kernel is None and self.heavy_out:
            maker = _HEAVY_MAKERS.get(node.op_type)
            if maker is not None:
                kernel = maker(node, self._arena)
        if kernel is None:
            kernel = _output_dest_kernel(node)
        if kernel is None:
            return None
        self._bindable_outputs += 1
        return _make_dest_head(kernel, node.present_inputs)

    def _make_head(self, node: OpNode, out_name: str,
                   storage_of: Dict[str, int],
                   storage_recyclable: List[bool]) -> Optional[Callable]:
        """A destination-passing head for out-capable nodes, else None
        (caller falls back to a plain bound-binder head).

        Elementwise/activation nodes and — when ``heavy_out`` is on — the
        heavy conv/GEMM/pooling nodes compute into liveness-managed arena
        buffers.  A heavy node whose output storage is not recyclable
        (e.g. a graph output, which must stay private to the caller) still
        gets a destination-passing head without an ``out=``: its workspace
        scratch stays arena-backed and its cached weight layouts apply.
        """
        kernel = _out_kernel(node)
        heavy = False
        if kernel is None and self.heavy_out:
            maker = _HEAVY_MAKERS.get(node.op_type)
            if maker is not None:
                kernel = maker(node, self._arena)
                heavy = True
        if kernel is None:
            return None
        sid = storage_of.get(out_name)
        if sid is None or not storage_recyclable[sid]:
            if not heavy:
                return None  # the plain binder path is equivalent
            in_names = tuple(node.present_inputs)
            self._heavy_step_count += 1
            return lambda values: np.asarray(
                kernel([values[n] for n in in_names], None))
        self._arena_step_count += 1
        if heavy:
            self._heavy_step_count += 1
        return _make_arena_head(kernel, node.present_inputs, self._arena)

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    @property
    def tracer(self):
        """The attached :class:`~repro.observability.Tracer`, if any."""
        return self._tracer

    def enable_tracing(self, tracer) -> None:
        """Attach ``tracer`` and swap in the traced step loop.

        The traced loop is a separate closure compiled here — one span per
        step (category ``"plan"``, label ``"OpType:node_name"``, fused
        tails named in the span args) via ``perf_counter_ns``.  The
        untraced loop is untouched, so detaching restores the exact
        default hot path.
        """
        if tracer is None:
            self.disable_tracing()
            return
        self._tracer = tracer
        self._exec = self._compile_exec(tracer)

    def disable_tracing(self) -> None:
        """Detach the tracer and restore the untraced step loop."""
        self._tracer = None
        self._exec = self._exec_untraced

    # ------------------------------------------------------------------
    # Step-loop compilation
    # ------------------------------------------------------------------
    def _step_failure(self, step_index: int, exc: BaseException) -> PlanError:
        """Wrap a step failure with node context (KeyError = fused-away)."""
        nodes = self._step_nodes[step_index]
        if isinstance(exc, KeyError):
            return PlanError(
                f"step for node {nodes[0].name} ({nodes[0].op_type}) requires "
                f"value {exc} which has not been computed (it may have been "
                "fused away)")
        names = "+".join(n.name for n in nodes)
        return PlanError(
            f"planned execution of {names} ({nodes[0].op_type}) failed: {exc}")

    def _compile_exec(self, tracer=None) -> Callable:
        """Compile the step loop into a closure over the plan's tables.

        With ``tracer=None`` this is the default allocation-free loop;
        with a tracer, each step is bracketed by ``perf_counter_ns`` reads
        and emitted as one span.  Both variants share the release/pinning
        logic and the error-context wrapping.
        """
        steps = self._steps
        release_after = self._release_after
        storage_of = self._storage_of
        arena = self._arena
        num_steps = len(steps)

        if tracer is None:
            def run_steps(values, dest, pinned):
                step_index = 0
                try:
                    for step_index in range(num_steps):
                        steps[step_index](values, dest)
                        released = release_after[step_index]
                        if released:
                            for owner in released:
                                if pinned is not None and storage_of[owner] in pinned:
                                    continue
                                array = values.get(owner)
                                if array is not None:
                                    arena.release(array)
                except PlanError:
                    raise
                except ExecutionError:
                    raise
                except Exception as exc:  # noqa: BLE001 - add node context
                    raise self._step_failure(step_index, exc) from exc
            return run_steps

        labels = self._step_labels
        span_args = self._step_span_args
        emit = tracer.emit
        now = time.perf_counter_ns

        def run_steps_traced(values, dest, pinned):
            step_index = 0
            try:
                for step_index in range(num_steps):
                    start_ns = now()
                    steps[step_index](values, dest)
                    emit(labels[step_index], "plan", start_ns, now(),
                         args=span_args[step_index])
                    released = release_after[step_index]
                    if released:
                        for owner in released:
                            if pinned is not None and storage_of[owner] in pinned:
                                continue
                            array = values.get(owner)
                            if array is not None:
                                arena.release(array)
            except PlanError:
                raise
            except ExecutionError:
                raise
            except Exception as exc:  # noqa: BLE001 - add node context
                raise self._step_failure(step_index, exc) from exc
        return run_steps_traced

    def _run_steps_hooked(self, values, dest, pinned, trace_hook) -> None:
        """The ``trace_hook`` step loop (profiler attribution path)."""
        steps = self._steps
        release_after = self._release_after
        storage_of = self._storage_of
        arena = self._arena
        step_index = 0
        try:
            for step_index in range(len(steps)):
                start = time.perf_counter()
                steps[step_index](values, dest)
                trace_hook(self._step_nodes[step_index][0],
                           time.perf_counter() - start)
                released = release_after[step_index]
                if released:
                    for owner in released:
                        if pinned is not None and storage_of[owner] in pinned:
                            continue
                        array = values.get(owner)
                        if array is not None:
                            arena.release(array)
        except PlanError:
            raise
        except ExecutionError:
            raise
        except Exception as exc:  # noqa: BLE001 - add node context
            raise self._step_failure(step_index, exc) from exc

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        inputs: Mapping[str, np.ndarray],
        outputs: Optional[Sequence[str]] = None,
        trace_hook: Optional[Callable[[OpNode, float], None]] = None,
        out: Optional[Mapping[str, np.ndarray]] = None,
    ) -> Dict[str, np.ndarray]:
        """Execute the plan and return the requested outputs.

        Mirrors :meth:`GraphExecutor.run`; ``trace_hook`` receives the
        step's head node (build with ``fuse=False`` for exact per-node
        attribution).  Values fused away into a producer's step cannot be
        requested via ``outputs``.

        ``out`` maps graph-output names to caller-owned destination
        buffers.  Destination-capable producers write the output directly
        into the buffer (no per-run graph-output allocation once the
        signature has specialized); everything else is finalized with an
        end-of-run copy.  A buffer overlapping any input array is only
        written after every step has run, so binding an output over an
        input is safe.  Shape/dtype mismatches raise :class:`PlanError`.
        """
        with self._lock:
            return self._run_locked(inputs, outputs, trace_hook, out)

    def _run_locked(self, inputs, outputs, trace_hook, out) -> Dict[str, np.ndarray]:
        values: Dict[str, np.ndarray] = dict(self._init_values)
        for name in self._input_names:
            if name not in inputs:
                raise PlanError(f"missing graph input {name!r}")
        for name, array in inputs.items():
            values[name] = np.asarray(array)

        # Caller-bound output destinations: `dest` is consulted by the
        # producing steps for direct writes; `bound` is the full set,
        # finalized below.  Buffers that may alias an input — or another
        # destination — are withheld from `dest`: writing them mid-run
        # could corrupt values later steps still read (or each other), so
        # they are handled by the end-of-run copy only.  A buffer
        # overlapping an initializer is rejected outright — even a
        # deferred copy into it would corrupt the weights of every
        # subsequent run.
        dest: Dict[str, np.ndarray] = {}
        bound: Dict[str, np.ndarray] = {}
        if out:
            feed_arrays = [values[name] for name in self._input_names]
            for name, buf in out.items():
                if name not in self._output_set:
                    raise PlanError(
                        f"out destination {name!r} is not a graph output "
                        f"(outputs: {self._output_names})")
                if not isinstance(buf, np.ndarray):
                    raise PlanError(
                        f"out destination {name!r} must be a numpy array, "
                        f"got {type(buf).__name__}")
                if not buf.flags.writeable:
                    raise PlanError(f"out destination {name!r} is read-only")
                cached = self._init_safe.get(id(buf))
                if cached is None or cached() is not buf:
                    if any(np.may_share_memory(buf, array)
                           for array in self._init_arrays):
                        raise PlanError(
                            f"out destination {name!r} overlaps an "
                            "initializer (weight) array; writing it would "
                            "corrupt the plan's weights for every "
                            "subsequent run")
                    key = id(buf)

                    def drop(ref, key=key, safe=self._init_safe):
                        if safe.get(key) is ref:
                            del safe[key]

                    self._init_safe[key] = weakref.ref(buf, drop)
                bound[name] = buf
            buffers = list(bound.items())
            for index, (name, buf) in enumerate(buffers):
                if any(np.may_share_memory(buf, array)
                       for array in feed_arrays):
                    continue
                if any(np.may_share_memory(buf, other)
                       for other_index, (_, other) in enumerate(buffers)
                       if other_index != index):
                    continue
                dest[name] = buf

        # Storages of explicitly requested intermediates must not recycle
        # during *this* run: a later step sharing their (shape, dtype)
        # slot would overwrite them before the end-of-run copy-out.
        # (Graph outputs are never recyclable, so the common case computes
        # nothing here.)
        pinned: Optional[set] = None
        if outputs is not None:
            pinned = {self._storage_of[name] for name in outputs
                      if name in self._storage_of} or None

        if trace_hook is None:
            self._exec(values, dest, pinned)
        else:
            self._run_steps_hooked(values, dest, pinned, trace_hook)

        wanted = list(outputs) if outputs is not None else self._output_names
        missing = [name for name in wanted if name not in values]
        if missing:
            raise PlanError(
                f"requested outputs not available from the plan: {missing} "
                "(graph outputs are always available; fused intermediates "
                "are not)")

        if bound:
            # Finalize every bound destination: outputs the producing step
            # already wrote in place need nothing; the rest are copied in.
            # Copies happen after all steps have run, so a destination
            # overlapping an input can never corrupt the computation.
            # Every source overlapping *any* pending destination (its own
            # included) is snapshotted before the first copyto runs — an
            # earlier copy must not corrupt a later copy's source.
            pending = [(name, buf) for name, buf in bound.items()
                       if values[name] is not buf]
            self._dest_direct_writes += len(bound) - len(pending)
            if pending:
                sources = []
                dest_buffers = [buf for _, buf in pending]
                for name, buf in pending:
                    src = values[name]
                    if src.shape != buf.shape or src.dtype != buf.dtype:
                        raise PlanError(
                            f"bound output {name!r}: destination has shape "
                            f"{buf.shape} dtype {buf.dtype}, but the run "
                            f"produced shape {src.shape} dtype {src.dtype}")
                    if any(np.may_share_memory(src, other)
                           for other in dest_buffers):
                        src = src.copy()
                    sources.append(src)
                for (name, buf), src in zip(pending, sources):
                    np.copyto(buf, src)
                    values[name] = buf
                    self._dest_copy_writes += 1

        result: Dict[str, np.ndarray] = {}
        for name in wanted:
            array = values[name]
            if name in bound:
                result[name] = array
                continue
            # Never hand an arena-recycled buffer (or a view of one) to the
            # caller — it would be overwritten by the next run.  Graph
            # outputs are never arena-backed; this only triggers for
            # explicitly requested intermediates.
            if self._aliases_arena(array):
                array = array.copy()
            result[name] = array
        return result

    def _aliases_arena(self, array: np.ndarray) -> bool:
        seen = 0
        while array is not None and seen < 8:
            if self._arena.is_owned(array):
                return True
            array = array.base
            seen += 1
        return False

    # ------------------------------------------------------------------
    # Introspection / interop
    # ------------------------------------------------------------------
    def stats(self) -> Dict:
        """Plan shape and arena counters (allocations stay flat once warm)."""
        return {
            "model": self.model_name,
            "nodes": self._num_nodes,
            "steps": len(self._steps),
            "fused_nodes": self._fused_node_count,
            "arena_steps": self._arena_step_count,
            "heavy_steps": self._heavy_step_count,
            "tracing": self._tracer is not None,
            "arena": self._arena.stats(),
            "output_binding": {
                "bindable_outputs": self._bindable_outputs,
                "direct_writes": self._dest_direct_writes,
                "copy_writes": self._dest_copy_writes,
            },
        }

    def as_cluster_module(self):
        """A single-cluster module shim so :class:`WarmExecutorPool` (and
        ``execute_generated_module``-style drivers) can run a plan directly."""
        if self._cluster_module is None:
            plan = self

            def run_cluster(inputs, weights, channels):  # noqa: ARG001
                return plan.run(inputs)

            self._cluster_module = types.SimpleNamespace(
                MODEL_NAME=self.model_name,
                CLUSTER_FUNCTIONS=[run_cluster],
                CHANNEL_NAMES=[],
                GRAPH_OUTPUTS=list(self._output_names),
            )
        return self._cluster_module


def plan_model(model, fuse: bool = True) -> ExecutionPlan:
    """Convenience constructor mirroring :func:`execute_model`'s shape."""
    return ExecutionPlan(model, fuse=fuse)
