"""Execution drivers for Ramiel-generated parallel modules.

The paper runs each cluster as a separate Python *process* (to sidestep the
GIL) communicating through bi-directional queues.  This module provides that
driver plus a thread-based variant (useful because the numpy runtime
releases the GIL inside BLAS, and because threads make the functional
equivalence tests fast and robust) and a single-threaded reference driver.

All drivers take the generated module (or anything exposing
``CLUSTER_FUNCTIONS``, ``CHANNEL_NAMES`` and ``GRAPH_OUTPUTS``), a graph
input feed and the model weights, and return the merged graph outputs.

With a ``tracer`` attached, :func:`execute_generated_module` propagates a
:class:`~repro.observability.context.TraceContext` to every cluster worker;
each worker records its ``worker.execute`` span in a local
:class:`~repro.observability.Tracer` against its real pid/tid and ships the
buffer back (over the existing result queue, for the process backend).
Shipped buffers land in the caller-supplied ``collector`` list as
:class:`~repro.observability.merge.WorkerTraceBuffer`\\ s ready for
:func:`repro.observability.merge.merge_traces`.  One-shot workers skip the
clock handshake the warm pools perform: they are forked (or threads), and
``perf_counter_ns`` is CLOCK_MONOTONIC — machine-wide — on fork platforms,
so their offset is recorded as 0.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import traceback
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.observability.context import TraceContext
from repro.observability.merge import WorkerTraceBuffer
from repro.runtime.channels import make_process_channels, make_thread_channels


class ParallelExecutionError(RuntimeError):
    """Raised when a cluster worker fails or the run times out."""


def remote_error_text(exc: BaseException) -> str:
    """Serialize a worker-side failure as repr **plus** its traceback text.

    Exceptions cannot cross the process boundary with their traceback
    objects attached, so workers ship this string instead of a bare
    ``repr(exc)`` — the coordinator's :class:`ParallelExecutionError`
    message then points at the worker-side frame that actually raised,
    not just the exception type.
    """
    return "%r\nRemote traceback:\n%s" % (exc, traceback.format_exc())


def _reap_processes(processes, join_timeout: float = 1.0) -> None:
    """Terminate, join and close every process; never raises.

    Used on the failure paths: a timed-out run must not leak live
    children (they would hold inherited memory and channel queues until
    interpreter exit).
    """
    for p in processes:
        try:
            if p.is_alive():
                p.terminate()
        except Exception:  # noqa: BLE001 - already reaped
            pass
    for p in processes:
        try:
            p.join(timeout=join_timeout)
            if p.is_alive():  # terminate lost the race: escalate
                p.kill()
                p.join(timeout=join_timeout)
        except Exception:  # noqa: BLE001 - already reaped
            pass
    for p in processes:
        try:
            p.close()
        except Exception:  # noqa: BLE001 - still-running straggler
            pass


# ---------------------------------------------------------------------------
# Worker-side tracing helpers
# ---------------------------------------------------------------------------
def _traced_worker_run(fn, inputs, weights, channels, ctx: TraceContext,
                       index: int):
    """Run one cluster under a fresh local tracer; return (outputs, payload)."""
    from repro.observability.trace import Tracer

    tracer = Tracer(capacity=1024)
    args = ctx.span_args({"cluster": str(index)})
    with tracer.span("worker.execute", cat="worker", args=args):
        outputs = fn(inputs, weights, channels)
    snapshot = tracer.export()
    spans = [(e.name, e.cat, e.start_ns, e.dur_ns,
              dict(e.args) if e.args else None)
             for e in snapshot["events"]]
    payload = {"spans": spans, "dropped": snapshot["dropped"],
               "pid": os.getpid(), "tid": threading.get_ident()}
    return outputs, payload


def _payload_to_buffer(index: int, payload: Dict) -> WorkerTraceBuffer:
    return WorkerTraceBuffer(
        worker=f"cluster-{index}", pid=payload["pid"], tid=payload["tid"],
        events=payload["spans"], dropped=payload["dropped"],
        clock_offset_ns=0)


# ---------------------------------------------------------------------------
# Thread backend
# ---------------------------------------------------------------------------
def _run_threaded(module, inputs, weights, timeout: float,
                  ctx: Optional[TraceContext] = None,
                  collector: Optional[list] = None) -> Dict[str, np.ndarray]:
    channels = make_thread_channels(module.CHANNEL_NAMES)
    results: Dict[int, Dict[str, np.ndarray]] = {}
    payloads: Dict[int, Dict] = {}
    errors: List[Tuple[int, BaseException]] = []

    def worker(index: int, fn) -> None:
        try:
            if ctx is None:
                results[index] = fn(inputs, weights, channels)
            else:
                results[index], payloads[index] = _traced_worker_run(
                    fn, inputs, weights, channels, ctx, index)
        except BaseException as exc:  # noqa: BLE001 - propagate to caller
            errors.append((index, exc))

    threads = [threading.Thread(target=worker, args=(i, fn), daemon=True,
                                name=f"cluster-{i}")
               for i, fn in enumerate(module.CLUSTER_FUNCTIONS)]
    for t in threads:
        t.start()
    deadline = time.monotonic() + timeout
    for t in threads:
        t.join(max(deadline - time.monotonic(), 0.0))
    if collector is not None:
        for index in sorted(payloads):
            collector.append(_payload_to_buffer(index, payloads[index]))
    if errors:
        index, exc = errors[0]
        raise ParallelExecutionError(f"cluster {index} failed: {exc!r}") from exc
    if any(t.is_alive() for t in threads):
        raise ParallelExecutionError(
            f"parallel execution of {module.MODEL_NAME!r} timed out after {timeout}s "
            "(possible deadlock)"
        )
    merged: Dict[str, np.ndarray] = {}
    for cluster_outputs in results.values():
        merged.update(cluster_outputs)
    return merged


# ---------------------------------------------------------------------------
# Process backend
# ---------------------------------------------------------------------------
def _process_worker(fn, inputs, weights, channels, result_queue, index,
                    trace_ctx) -> None:
    try:
        if trace_ctx is None:
            outputs = fn(inputs, weights, channels)
            result_queue.put((index, outputs, None, None))
        else:
            outputs, payload = _traced_worker_run(
                fn, inputs, weights, channels, trace_ctx, index)
            result_queue.put((index, outputs, None, payload))
    except BaseException as exc:  # noqa: BLE001 - serialize the failure
        result_queue.put((index, {}, remote_error_text(exc), None))


def _run_processes(module, inputs, weights, timeout: float,
                   trace_ctx: Optional[TraceContext] = None,
                   collector: Optional[list] = None) -> Dict[str, np.ndarray]:
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        ctx = multiprocessing.get_context()
    channels = make_process_channels(module.CHANNEL_NAMES, ctx=ctx)
    result_queue = ctx.Queue()

    processes = [
        ctx.Process(target=_process_worker,
                    args=(fn, inputs, weights, channels, result_queue, i,
                          trace_ctx),
                    daemon=True, name=f"cluster-{i}")
        for i, fn in enumerate(module.CLUSTER_FUNCTIONS)
    ]
    for p in processes:
        p.start()

    merged: Dict[str, np.ndarray] = {}
    failures: List[str] = []
    deadline = time.monotonic() + timeout
    pending = len(processes)
    while pending > 0:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            # Reap every child before raising: a bare join-with-timeout
            # here used to leak live worker processes on timeout.
            _reap_processes(processes)
            raise ParallelExecutionError(
                f"parallel execution of {module.MODEL_NAME!r} timed out after {timeout}s"
            )
        try:
            index, outputs, error, payload = result_queue.get(
                timeout=min(remaining, 0.5))
        except Exception:  # noqa: BLE001 - queue.Empty; keep polling until deadline
            continue
        pending -= 1
        if payload is not None and collector is not None:
            collector.append(_payload_to_buffer(index, payload))
        if error is not None:
            failures.append(f"cluster {index}: {error}")
        else:
            merged.update(outputs)
    if failures:
        _reap_processes(processes)
        raise ParallelExecutionError("; ".join(failures))
    for p in processes:
        p.join(timeout=1.0)
        if p.is_alive():  # pragma: no cover - stragglers after results arrived
            p.terminate()
            p.join(timeout=1.0)
        try:
            p.close()
        except Exception:  # noqa: BLE001 - still-running straggler
            pass
    return merged


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------
def execute_generated_module(
    module,
    inputs: Mapping[str, np.ndarray],
    weights: Mapping[str, np.ndarray],
    backend: str = "thread",
    timeout: float = 300.0,
    *,
    tracer=None,
    collector: Optional[list] = None,
) -> Dict[str, np.ndarray]:
    """Execute a generated parallel module and return its graph outputs.

    Parameters
    ----------
    module:
        The generated module (or :class:`repro.codegen.module_writer.GeneratedModule`).
    inputs / weights:
        Graph-input feed and initializer values (``model.graph.initializers``).
    backend:
        ``"process"`` — one Python process per cluster (the paper's runtime);
        ``"thread"`` — one thread per cluster (numpy releases the GIL in BLAS).
    timeout:
        Watchdog in seconds; a deadlock (which a correct clustering cannot
        produce) surfaces as :class:`ParallelExecutionError` instead of a hang.
    tracer:
        Optional coordinator :class:`~repro.observability.Tracer`.  When
        given, a trace context is propagated to every worker and the
        coordinator records a ``runtime.parallel_run`` span around the run.
    collector:
        Optional list to which per-worker
        :class:`~repro.observability.merge.WorkerTraceBuffer`\\ s are
        appended (requires ``tracer``).
    """
    module = getattr(module, "module", module)
    if backend not in ("thread", "process"):
        raise ValueError(f"unknown backend {backend!r}; use 'thread' or 'process'")
    trace_ctx = TraceContext.from_tracer(
        tracer, parent_span="execute_generated_module")
    start_ns = tracer.now() if tracer is not None else 0
    if backend == "thread":
        outputs = _run_threaded(module, dict(inputs), dict(weights), timeout,
                                ctx=trace_ctx, collector=collector)
    else:
        outputs = _run_processes(module, dict(inputs), dict(weights), timeout,
                                 trace_ctx=trace_ctx, collector=collector)
    if tracer is not None:
        args = {"model": module.MODEL_NAME, "backend": backend}
        if trace_ctx is not None:
            args["trace_id"] = str(trace_ctx.trace_id)
        tracer.emit("runtime.parallel_run", "runtime", start_ns, tracer.now(),
                    args=args)
    missing = [name for name in module.GRAPH_OUTPUTS if name not in outputs]
    if missing:
        raise ParallelExecutionError(
            f"parallel run of {module.MODEL_NAME!r} did not produce outputs: {missing}"
        )
    return {name: outputs[name] for name in module.GRAPH_OUTPUTS}


def run_sequential_module(
    module,
    inputs: Mapping[str, np.ndarray],
    weights: Mapping[str, np.ndarray],
) -> Dict[str, np.ndarray]:
    """Execute a generated sequential module (single function call)."""
    module = getattr(module, "module", module)
    return module.run(dict(inputs), dict(weights))


def time_callable(fn, repeats: int = 3, warmup: int = 1) -> Tuple[float, object]:
    """Median wall-clock time of ``fn()`` over ``repeats`` runs (plus last result)."""
    result = None
    for _ in range(max(warmup, 0)):
        result = fn()
    samples = []
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2], result
