"""Execution substrate for IR graphs and for Ramiel-generated code.

The paper generates *PyTorch + Python* code.  PyTorch is not available in
this environment, so this package provides the pieces the generated code
and the benchmarks need:

* :mod:`repro.runtime.functional` — a flat namespace of numpy-backed
  operators (``conv2d``, ``relu``, ``matmul``, ``concat`` …).  Generated
  code imports it as ``import repro.runtime.functional as F`` and calls
  ``F.conv2d(...)`` exactly where the paper's code would call
  ``torch.nn.functional.conv2d``.
* :class:`repro.runtime.executor.GraphExecutor` — a reference interpreter
  that runs an IR graph directly (used to check generated code against the
  source model and by constant folding).
* :class:`repro.runtime.plan.ExecutionPlan` — the planned execution engine:
  compile-once bound closures, a liveness-managed buffer arena and fused
  elementwise tails; the serving engine's default executor, differentially
  tested against :class:`GraphExecutor`.
* :mod:`repro.runtime.channels`, :mod:`repro.runtime.process_runtime` and
  :mod:`repro.runtime.thread_runtime` — the message-passing cluster
  runtimes (Python processes + queues, as in the paper, plus a thread
  variant).
* :mod:`repro.runtime.intra_op` — intra-operator thread parallelism with a
  ``num_threads`` knob mirroring ``OMP_NUM_THREADS`` (Table V).
* :class:`repro.runtime.worker_pool.WarmExecutorPool` — long-lived
  per-cluster workers that execute a compiled module repeatedly without
  per-call thread/process spawn (the serving engine's execution substrate).
* :mod:`repro.runtime.profiler` — per-node timing and the slack database
  that drives hyperclustering decisions.
"""

from repro.runtime.executor import GraphExecutor, execute_model, ExecutionError
from repro.runtime.intra_op import intra_op_threads, get_num_threads, set_num_threads
from repro.runtime.plan import ExecutionPlan, PlanError, plan_model
from repro.runtime.profiler import (OpProfile, GraphProfile, profile_model,
                                    profile_plan_steps)
from repro.runtime.session import (
    IOBinding,
    Session,
    create_session,
    known_executors,
    validate_executor,
)
from repro.runtime.tensor_utils import Workspace
from repro.runtime.worker_pool import WarmExecutorPool

__all__ = [
    "GraphExecutor",
    "execute_model",
    "ExecutionError",
    "ExecutionPlan",
    "IOBinding",
    "PlanError",
    "Session",
    "create_session",
    "known_executors",
    "plan_model",
    "validate_executor",
    "WarmExecutorPool",
    "Workspace",
    "intra_op_threads",
    "get_num_threads",
    "set_num_threads",
    "OpProfile",
    "GraphProfile",
    "profile_model",
    "profile_plan_steps",
]
