"""The batched inference-serving engine on top of Ramiel-compiled schedules.

:class:`InferenceEngine` turns the one-shot ``ramiel_compile`` + ``execute``
pipeline into a serving loop:

1. **Compiled-artifact cache** — each (model fingerprint, pipeline config,
   input signature) triple is compiled exactly once; the compiled execution
   state is reused across requests (:mod:`repro.serving.artifact_cache`).
2. **Session execution** — each cached artifact holds a
   :class:`~repro.runtime.session.Session` (the unified execution
   surface).  With the default ``executor="plan"`` every request batch
   runs through a compile-once
   :class:`~repro.runtime.plan.ExecutionPlan` (bound closures, buffer
   arena, fused elementwise tails): no per-request ``GraphExecutor``
   construction, no per-node dispatch, and a zero-realloc steady state;
   fused batches are staged into session-pinned ``IOBinding`` buffers
   instead of a fresh ``concatenate`` per batch, and every in-process
   batch runs under a watchdog so a stuck batch cannot pin the artifact's
   micro-batcher thread.  ``executor="pool"``/``"process"`` instead serve
   via the generated parallel module on warm per-cluster worker pools
   (:mod:`repro.runtime.worker_pool`), the paper-shaped multi-worker
   runtime.
3. **Dynamic micro-batching** — concurrent :meth:`InferenceEngine.submit`
   calls against the same artifact are fused along the batch axis under a
   max-batch-size / max-wait policy (:mod:`repro.serving.batching`).
4. **Metrics** — throughput, latency percentiles, batch-size histogram and
   cache hit rate (:mod:`repro.serving.metrics`), rendered by
   :func:`repro.analysis.reports.render_serving_report`.

Example::

    from repro.models import build_model
    from repro.serving import InferenceEngine, example_inputs

    engine = InferenceEngine()
    model = build_model("squeezenet", variant="small")
    outputs = engine.infer(model, example_inputs(model))
    print(engine.metrics.snapshot())
    engine.shutdown()
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.ir.model import Model
from repro.pipeline import (
    PipelineConfig,
    RamielResult,
    config_fingerprint,
    model_fingerprint,
    ramiel_compile,
)
from repro.resilience import PoolSupervisor, ResilienceConfig, ResilientDispatcher
from repro.runtime.process_runtime import execute_generated_module
from repro.runtime.session import IOBinding, Session, create_session, validate_executor
from repro.serving.artifact_cache import ArtifactCache, ArtifactKey
from repro.serving.batching import (
    BATCH_AXIS,
    BatcherClosed,
    BatchPolicy,
    MicroBatcher,
    ServingError,
    stack_requests,
)
from repro.serving.metrics import ServingMetrics
from repro.serving.qos import QoSConfig, QoSFrontend


class ShapeMismatchError(ServingError):
    """A request's inputs do not match the model's declared signature."""


@dataclasses.dataclass
class EngineConfig:
    """Configuration of one :class:`InferenceEngine`."""

    #: batch-closing policy shared by every artifact's micro-batcher
    max_batch_size: int = 8
    max_wait_s: float = 0.005
    #: compiled artifacts kept warm before LRU eviction; size it above the
    #: concurrently-served working set (model x config x signature triples)
    cache_capacity: int = 16
    #: request execution engine — any name from
    #: :func:`repro.runtime.session.known_executors`: "plan" (default — the
    #: compile-once planned hot path), "interp" (the reference interpreter
    #: behind the same Session interface), or "pool"/"process" (the
    #: generated parallel module on warm per-cluster workers)
    executor: str = "plan"
    #: warm-pool backend for executor="pool": "thread" (default) or
    #: "process" (fork platforms; equivalent to executor="process")
    backend: str = "thread"
    #: per-batch execution watchdog (all executors — in-process sessions
    #: run batches on a watchdog thread so a stuck batch cannot pin the
    #: micro-batcher forever)
    timeout_s: float = 300.0
    #: multi-tenant QoS (:class:`repro.serving.qos.QoSConfig`): weighted
    #: deadline-aware admission in front of the micro-batchers, bounded-
    #: queue backpressure, per-artifact concurrency caps and per-tenant
    #: artifact-cache quotas.  ``None`` (the default) keeps the legacy
    #: direct submit path bit-for-bit (``tenant=``/``deadline_s=`` are
    #: then ignored).
    qos: Optional[QoSConfig] = None
    #: self-healing policy stack (:class:`repro.resilience.ResilienceConfig`):
    #: worker supervision, batch retry with session recovery, artifact-level
    #: circuit breaking and degraded fallback onto the in-process "plan"
    #: executor.  ``None`` (the default) keeps the legacy fail-fast
    #: behavior: a failed batch fails its requests and a broken artifact is
    #: invalidated for recompilation.
    resilience: Optional[ResilienceConfig] = None
    #: compilation settings applied to every model served by this engine
    pipeline: PipelineConfig = dataclasses.field(default_factory=PipelineConfig)

    def __post_init__(self) -> None:
        validate_executor(self.executor, context="serving executor")
        if self.backend not in ("thread", "process"):
            raise ValueError(
                f"unknown backend {self.backend!r}; use 'thread' or 'process'")

    def session_executor(self) -> str:
        """The effective session executor ("pool"+process backend = "process")."""
        if self.executor == "pool" and self.backend == "process":
            return "process"
        return self.executor

    def batch_policy(self) -> BatchPolicy:
        """The batching policy derived from this config."""
        return BatchPolicy(max_batch_size=self.max_batch_size,
                           max_wait_s=self.max_wait_s)


class _BatchWatchdog:
    """Runs in-process batches on a private thread with a deadline.

    The pool executor has always had per-batch timeout + broken-artifact
    recovery (a run that times out marks the pool broken and the artifact
    is invalidated).  This ports the same semantics to the in-process
    session executors ("plan"/"interp"): batches execute on the watchdog's
    worker thread, the collector waits with a timeout, and a batch that
    never returns marks the watchdog (and its session) broken instead of
    pinning the artifact's micro-batcher thread forever.  The wedged
    worker thread is daemonic and leaks until its run returns — exactly
    the warm pool's failure contract.
    """

    def __init__(self, label: str) -> None:
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"serve-watchdog-{label}")
        self._broken: Optional[str] = None
        self.label = label

    @property
    def broken(self) -> bool:
        return self._broken is not None

    def run(self, fn, arg, timeout: float):
        if self._broken is not None:
            raise ServingError(
                f"executor for {self.label!r} is broken after an earlier "
                f"failure ({self._broken}); the artifact should have been "
                "invalidated")
        future = self._executor.submit(fn, arg)
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            self._broken = f"batch timed out after {timeout}s"
            future.cancel()
            raise ServingError(
                f"batch execution for {self.label!r} timed out after "
                f"{timeout}s; the artifact is invalidated and the next "
                "request recompiles") from None

    def reset(self) -> None:
        """Clear ``broken`` after the session behind it has been recovered.

        The wedged run may still occupy the old single worker thread, so
        the executor is replaced wholesale — the abandoned thread leaks
        until its run returns, exactly like a watchdogged timeout.
        """
        old = self._executor
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"serve-watchdog-{self.label}")
        old.shutdown(wait=False)
        self._broken = None

    def close(self) -> None:
        self._executor.shutdown(wait=False)


class _PinnedStacker:
    """Stacks micro-batches into pinned staging buffers bound to a session.

    Replaces the per-batch ``np.concatenate`` with copies into
    session-bound staging arrays (``IOBinding.bind_input``): once the
    largest batch shape has been seen, batch assembly allocates nothing —
    the cross-run input pinning the ROADMAP called for.  Single-request
    batches pass through zero-copy.  Falls back to plain stacking when the
    request names do not cover the session's graph inputs (e.g. pruning
    changed the input set).
    """

    def __init__(self, session: Session, max_batch_size: int) -> None:
        self._session = session
        self._binding = session.bind()
        self._max_batch = max(int(max_batch_size), 1)
        self._staging: Dict[str, np.ndarray] = {}

    @property
    def staging_buffers(self) -> List[np.ndarray]:
        """The pinned staging arrays currently bound (for alias checks)."""
        return list(self._staging.values())

    def __call__(self, requests):
        if len(requests) == 1:
            return dict(requests[0].inputs)
        names = set(requests[0].inputs)
        if set(self._session.input_names) - names:
            return stack_requests(requests)
        total = sum(r.batch_len for r in requests)
        feed: Dict[str, np.ndarray] = {}
        for name, first in requests[0].inputs.items():
            first = np.asarray(first)
            tail, dtype = first.shape[1:], first.dtype
            staging = self._staging.get(name)
            if (staging is None or staging.shape[1:] != tail
                    or staging.dtype != dtype or staging.shape[0] < total):
                staging = np.empty((max(total, self._max_batch),) + tail, dtype)
                self._staging[name] = staging
            offset = 0
            for request in requests:
                staging[offset:offset + request.batch_len] = request.inputs[name]
                offset += request.batch_len
            feed[name] = staging[:total]
        try:
            for name, view in feed.items():
                self._binding.bind_input(name, view)
        except ValueError:
            # Requests that pass serving validation but fail the binding's
            # stricter declared-signature check (e.g. a castable dtype the
            # kernels accept) must keep serving exactly as before: fall
            # back to the plain feed of the same pinned staging views.
            return feed
        return self._binding


@dataclasses.dataclass
class CompiledArtifact:
    """One cached compilation: result, session and batcher.

    The execution substrate is a :class:`~repro.runtime.session.Session`
    over the compiled result, selected by :attr:`EngineConfig.executor`;
    requests never construct a fresh ``GraphExecutor`` (or any other
    per-request execution state).
    """

    key: ArtifactKey
    result: RamielResult
    batcher: MicroBatcher
    compile_time_s: float
    #: the unified execution surface holding the plan or warm pool
    session: Optional[Session] = None
    #: watchdog thread for in-process ("plan"/"interp") sessions
    watchdog: Optional[_BatchWatchdog] = None
    #: retry/breaker/degradation wrapper (``EngineConfig.resilience`` set)
    dispatcher: Optional[ResilientDispatcher] = None
    #: worker supervisor of a pool-backed resilient artifact
    supervisor: Optional[PoolSupervisor] = None
    #: lazily-built degraded fallback: ``[(plan session, its watchdog)]``
    #: once the breaker first routes around the broken primary
    degraded_cell: Optional[list] = None
    #: whether concurrent requests may be fused along the batch axis (some
    #: generated code bakes the batch size into static reshapes — e.g.
    #: BERT's attention head splits — and must be served one request at a time)
    batchable: bool = True

    @property
    def model_name(self) -> str:
        """Name of the compiled model."""
        return self.result.model.name

    @property
    def plan(self):
        """The session's :class:`ExecutionPlan` (``executor="plan"``), else None."""
        return self.session.plan if self.session is not None else None

    @property
    def pool(self):
        """The session's warm worker pool (``executor="pool"/"process"``), else None."""
        return self.session.pool if self.session is not None else None

    def close(self) -> None:
        """Shut down the batcher, watchdog and session (warm pool included)."""
        self.batcher.close()
        if self.supervisor is not None:
            self.supervisor.stop()
        if self.watchdog is not None:
            self.watchdog.close()
        if self.session is not None:
            self.session.close()
        if self.degraded_cell:
            fb_session, fb_watchdog = self.degraded_cell[0]
            fb_watchdog.close()
            fb_session.close()


class InferenceEngine:
    """Serves Ramiel-compiled models with artifact caching and micro-batching.

    The engine is thread-safe: any number of caller threads may ``submit``
    concurrently, which is precisely what feeds the micro-batcher.
    """

    def __init__(self, config: Optional[EngineConfig] = None, *,
                 registry=None, tracer=None) -> None:
        self.config = config or EngineConfig()
        # EngineConfig validates eagerly in __post_init__; re-validate here
        # for callers that mutated the dataclass after construction.
        validate_executor(self.config.executor, context="serving executor")
        # One MetricsRegistry per engine (or a caller-shared one): serving
        # counters mirror into it, and a pull collector publishes every
        # cached artifact's plan/arena/binding gauges — the single snapshot
        # that used to take three separate stats() APIs.
        if registry is None:
            from repro.observability import MetricsRegistry
            registry = MetricsRegistry()
        self.registry = registry
        self.tracer = tracer
        self.metrics = ServingMetrics(registry=registry)
        registry.register_collector(self._collect_artifact_metrics)
        self._config_fp = config_fingerprint(self.config.pipeline)
        qos = self.config.qos
        self._cache = ArtifactCache(
            capacity=self.config.cache_capacity,
            on_evict=self._on_evict,
            quota_for=qos.cache_quota_for if qos is not None else None)
        self._closed = False
        # The QoS frontend (weighted admission queue + dispatcher thread)
        # sits in front of _route; without a QoS config the legacy direct
        # submit path is untouched.
        self.qos: Optional[QoSFrontend] = (
            QoSFrontend(self, qos) if qos is not None else None)

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit(self, model: Model,
               inputs: Optional[Mapping[str, np.ndarray]] = None, *,
               tenant: Optional[str] = None,
               deadline_s: Optional[float] = None,
               binding: Optional[IOBinding] = None) -> Future:
        """Enqueue one inference request; returns a future of its outputs.

        The request is validated against the model's declared input
        signature (:class:`ShapeMismatchError` on mismatch), routed to the
        compiled artifact for its signature (compiling it on first sight),
        and micro-batched with concurrent compatible requests.

        With :attr:`EngineConfig.qos` configured, the request first passes
        admission control: ``tenant`` selects the weight/queue/deadline
        contract (the default tenant otherwise) and ``deadline_s``
        overrides the tenant's per-request deadline budget.  Rejections
        (queue full, overload, expired budget) raise
        :class:`~repro.serving.qos.QoSError` subclasses *synchronously*.
        Without QoS the two parameters are ignored.

        ``binding`` threads a client-supplied
        :class:`~repro.runtime.session.IOBinding` (from :meth:`bind`)
        through the request: inputs are read from the binding's pinned
        staging buffers when ``inputs`` is ``None``, and outputs are
        written into the binding's bound output buffers — the resolved
        dict's arrays *are* those buffers, so a warm request→response
        loop allocates nothing.  One request per binding may be in
        flight at a time.
        """
        if self._closed:
            raise ServingError("engine is shut down")
        if inputs is None:
            if binding is None:
                raise ValueError("submit() needs inputs= or binding=")
            inputs = binding.inputs
        tracer = self.tracer
        if tracer is not None:
            with tracer.span("request.submit", cat="serving",
                             args={"model": model.name}):
                return self._submit(model, inputs, tenant, deadline_s, binding)
        return self._submit(model, inputs, tenant, deadline_s, binding)

    def _submit(self, model, inputs, tenant, deadline_s, binding) -> Future:
        arrays, batch_len, signature = self._validate(model, inputs)
        self.metrics.record_submitted()
        if self.qos is not None:
            future = self.qos.submit(model, arrays, batch_len, signature,
                                     tenant=tenant, deadline_s=deadline_s)
        else:
            future, _ = self._route(model, signature, arrays, batch_len)
        if binding is not None:
            future = self._finalize_binding(future, binding)
        return future

    def _route_once(self, model: Model, signature: Tuple,
                    arrays: Dict[str, np.ndarray], batch_len: int,
                    partition: Optional[str] = None):
        """Resolve the artifact and enqueue exactly once.

        Raises :class:`BatcherClosed` (after invalidating the stale cache
        entry) when the artifact died between lookup and enqueue; callers
        decide the retry discipline — :meth:`_route` loops a fixed three
        times, the QoS dispatcher applies its configured
        :class:`~repro.resilience.RetryPolicy` with the request's
        remaining deadline budget.
        """
        artifact = self._artifact_for(model, signature, partition=partition)
        if not artifact.batchable and batch_len > 1:
            raise ServingError(
                f"model {model.name!r} was compiled non-batch-fusable (its "
                "generated code bakes in the batch size); requests must "
                f"carry a single sample, got batch length {batch_len}")
        try:
            return artifact.batcher.submit(arrays, batch_len), artifact
        except BatcherClosed:
            self._cache.invalidate(artifact.key, expected=artifact)
            raise

    def _route(self, model: Model, signature: Tuple,
               arrays: Dict[str, np.ndarray], batch_len: int):
        """Resolve the artifact and enqueue; retries if it dies under us.

        Between the cache lookup and the enqueue the artifact can be closed
        by LRU eviction or broken-pool invalidation on another thread; the
        stale entry is dropped and the request transparently recompiles
        instead of surfacing :class:`BatcherClosed`.  (Requests already
        *enqueued* in an evicted batcher do fail with :class:`BatcherClosed`
        — size ``cache_capacity`` above the concurrently-served working set
        to avoid eviction churn.)
        """
        last_exc: Optional[BaseException] = None
        for _ in range(3):
            try:
                return self._route_once(model, signature, arrays, batch_len)
            except BatcherClosed as exc:
                last_exc = exc
        raise ServingError(
            f"could not route request for model {model.name!r}: artifact kept "
            "closing under the request (severe cache-capacity pressure?)"
        ) from last_exc

    # ------------------------------------------------------------------
    # Binding-aware responses
    # ------------------------------------------------------------------
    def bind(self, model: Model,
             inputs: Mapping[str, np.ndarray]) -> IOBinding:
        """An :class:`IOBinding` pinned to the artifact serving ``inputs``.

        Resolves (compiling on first sight) the artifact for the request
        signature and returns a fresh binding whose input buffers are
        *owned copies* of ``inputs`` — refill them in place between
        requests, then ``submit(model, binding=...)``.  Bind output
        buffers (``binding.bind_output``) to make the response side
        allocation-free too: each completed request copies its outputs
        into the bound buffers instead of handing out fresh arrays.
        """
        if self._closed:
            raise ServingError("engine is shut down")
        arrays, _, signature = self._validate(model, inputs)
        artifact = self._artifact_for(model, signature)
        binding = artifact.session.bind()
        for name, array in arrays.items():
            binding.bind_input(name, np.array(array))
        return binding

    def _finalize_binding(self, inner: Future, binding: IOBinding) -> Future:
        """Chain a future that lands outputs in the binding's buffers.

        Runs in the completing thread (the batch collector), before the
        next batch executes — so copying out of the scattered views is
        race-free.  Bound buffers are written with ``np.copyto`` (no
        allocation); ``bind_output(name)`` placeholders materialize a
        private reused buffer on first completion; unbound outputs pass
        through unchanged.
        """
        outer: Future = Future()

        def _done(f: Future) -> None:
            exc = f.exception()
            if exc is not None:
                outer.set_exception(exc)
                return
            try:
                outputs = dict(f.result())
                for name, bound in binding._outputs.items():
                    if name not in outputs:
                        continue
                    array = np.asarray(outputs[name])
                    if bound is None:
                        # lazily-bound: adopt a private copy as the
                        # reused destination for every later request
                        bound = np.array(array)
                        binding._outputs[name] = bound
                    else:
                        if bound.shape != array.shape or bound.dtype != array.dtype:
                            raise ServingError(
                                f"bound output {name!r}: destination has "
                                f"shape {bound.shape} dtype {bound.dtype}, "
                                f"but the request produced shape "
                                f"{array.shape} dtype {array.dtype}")
                        np.copyto(bound, array)
                    outputs[name] = bound
                outer.set_result(outputs)
            except BaseException as finalize_exc:  # noqa: BLE001
                outer.set_exception(finalize_exc)

        inner.add_done_callback(_done)
        return outer

    def infer(self, model: Model, inputs: Mapping[str, np.ndarray],
              timeout: Optional[float] = None) -> Dict[str, np.ndarray]:
        """Synchronous :meth:`submit` + wait."""
        return self.submit(model, inputs).result(
            timeout=timeout if timeout is not None else self.config.timeout_s + 60.0)

    def warmup(self, model: Model,
               inputs: Optional[Mapping[str, np.ndarray]] = None) -> Dict:
        """Compile (or cache-hit) the artifact for a model and run one request.

        Returns a small summary dict; after warmup, the first real request
        pays neither compilation nor worker-pool startup.
        """
        if self._closed:
            raise ServingError("engine is shut down")
        feed = dict(inputs) if inputs is not None else example_inputs(model)
        start = time.perf_counter()
        arrays, batch_len, signature = self._validate(model, feed)
        self.metrics.record_submitted()
        future, artifact = self._route(model, signature, arrays, batch_len)
        future.result(timeout=self.config.timeout_s + 60.0)
        cache = self._cache.stats()
        return {
            "model": model.name,
            "warmup_time_s": round(time.perf_counter() - start, 4),
            "executor": self.config.executor,
            "batchable": artifact.batchable,
            "cached_artifacts": cache["size"],
            "compiles": self.metrics.snapshot()["cache"]["compiles"],
        }

    def drain(self, timeout: float = 30.0) -> bool:
        """Wait for queued + in-flight QoS requests to finish; True if empty.

        Without a QoS frontend there is no admission queue to drain and
        this returns immediately (in-flight micro-batches still complete
        through their futures).  New submissions during a drain are
        rejected with :class:`~repro.serving.qos.EngineOverloaded`.
        """
        if self.qos is None:
            return True
        return self.qos.drain(timeout=timeout)

    def shutdown(self) -> None:
        """Close every cached artifact's batcher and worker pool."""
        self._closed = True
        # QoS first: stop admitting and fail queued requests before their
        # target batchers disappear underneath them.
        if self.qos is not None:
            self.qos.close()
        self._cache.clear()

    def __enter__(self) -> "InferenceEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Cache / compilation
    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, int]:
        """The artifact cache's size/hit/miss/eviction counters."""
        return self._cache.stats()

    def _artifact_for(self, model: Model, signature: Tuple,
                      partition: Optional[str] = None) -> CompiledArtifact:
        key = ArtifactKey(model_fingerprint(model), self._config_fp, signature)
        artifact, hit = self._cache.get_or_create(
            key, lambda: self._compile(model, key), partition=partition)
        if self._closed:
            # shutdown raced this lookup/compile: make sure the artifact is
            # not left running (clear() may have missed the in-flight entry)
            self._cache.invalidate(key, expected=artifact)
            artifact.close()
            raise ServingError("engine is shut down")
        self.metrics.record_cache(hit)
        return artifact

    def _compile(self, model: Model, key: ArtifactKey) -> CompiledArtifact:
        start = time.perf_counter()
        executor = self.config.session_executor()
        in_process = executor in ("plan", "interp")
        # The in-process session executes the optimized model directly;
        # generating the parallel module (and spawning its workers) is only
        # needed for the pool-backed executors.
        result = ramiel_compile(model, config=dataclasses.replace(
            self.config.pipeline, generate_code=not in_process,
            build_plan=executor == "plan"))
        # Passing the tracer at construction (rather than set_tracer after)
        # matters for "process" executors: the pool's channels can only be
        # instrumented before the workers fork.  Run-level session spans
        # (and per-step plan spans for "plan" executors) nest inside the
        # batcher's batch.execute span; pool-backed sessions additionally
        # ship per-worker execute spans home for merged traces.
        session = create_session(result, executor=executor,
                                 timeout_s=self.config.timeout_s,
                                 tracer=self.tracer)
        artifact_cell: list = []
        label = f"{model.name}@{key.short()}"
        resilience = self.config.resilience
        watchdog: Optional[_BatchWatchdog] = None
        stacker: Optional[_PinnedStacker] = None
        dispatcher: Optional[ResilientDispatcher] = None
        supervisor: Optional[PoolSupervisor] = None
        degraded_cell: Optional[list] = None

        def invalidate() -> None:
            if artifact_cell:
                self._cache.invalidate(key, expected=artifact_cell[0])

        if in_process:
            watchdog = _BatchWatchdog(label)
            stacker = _PinnedStacker(session, self.config.max_batch_size)

            def execute(stacked) -> Dict[str, np.ndarray]:
                # The stacker hands back either a pinned IOBinding (fused
                # batch) or a plain feed dict (single request / fallback).
                fn = (session.run_with_binding
                      if isinstance(stacked, IOBinding) else session.run)
                outputs = watchdog.run(fn, stacked, self.config.timeout_s)
                # Outputs that alias the pinned staging buffers would be
                # overwritten by the next batch; hand out private copies.
                staging = stacker.staging_buffers
                if staging:
                    for name, array in list(outputs.items()):
                        array = np.asarray(array)
                        if any(np.may_share_memory(array, buf)
                               for buf in staging):
                            outputs[name] = np.array(array)
                return outputs

            if resilience is None:
                def run_batch(stacked) -> Dict[str, np.ndarray]:
                    try:
                        return execute(stacked)
                    except ServingError:
                        # Timed-out (or already-broken) watchdog: the stuck
                        # run may hold the plan lock forever — retire the
                        # session and drop the artifact so the next request
                        # recompiles.
                        session.mark_broken("batch watchdog timeout")
                        invalidate()
                        raise
            else:
                def recover() -> None:
                    # Order matters: a fresh ExecutionPlan first (the wedged
                    # run may hold the old plan's lock forever), then a fresh
                    # watchdog thread to run it on.
                    session.recover()
                    watchdog.reset()

                dispatcher = ResilientDispatcher(
                    execute, resilience, recover=recover, name=label)

                def run_batch(stacked) -> Dict[str, np.ndarray]:
                    try:
                        return dispatcher(stacked)
                    except BaseException:
                        # Only a still-broken session/watchdog means the
                        # artifact itself is unusable (recovery failed or the
                        # last attempt wedged it); transient request errors
                        # leave it cached and the breaker does the pacing.
                        if watchdog.broken or session.broken:
                            session.mark_broken(
                                "batch dispatch exhausted its retry budget")
                            invalidate()
                        raise

            run_once = execute
        else:
            pool = session.pool

            def run_once(feed: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
                # One-shot thread driver so a probe failure cannot wedge the
                # warm pool.
                return execute_generated_module(
                    result.parallel_module, feed,
                    result.optimized_model.graph.initializers,
                    backend="thread", timeout=self.config.timeout_s)

            if resilience is None:
                def run_batch(stacked: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
                    try:
                        return session.run(stacked, timeout=self.config.timeout_s)
                    except BaseException:
                        # A failed/timed-out run can leave workers wedged;
                        # drop the artifact so the next request recompiles
                        # instead of hitting a permanently broken pool.
                        if pool.broken:
                            invalidate()
                        raise
            else:
                if resilience.fault_injector is not None:
                    pool.set_fault_injector(resilience.fault_injector)
                if resilience.supervise:
                    supervisor = PoolSupervisor(
                        pool, interval_s=resilience.heartbeat_interval_s,
                        hang_timeout_s=resilience.hang_timeout_s,
                        tracer=self.tracer).start()
                degraded_cell = []

                def primary(stacked: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
                    return session.run(stacked, timeout=self.config.timeout_s)

                def recover() -> None:
                    session.recover()

                def degraded(stacked: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
                    # Graceful degradation: serve through an in-process
                    # "plan" session over the same compiled result while the
                    # breaker keeps traffic off the broken pool.  Built
                    # lazily — fault-free serving never pays for it — and on
                    # its own watchdog so a stuck degraded batch cannot pin
                    # the micro-batcher either.
                    if not degraded_cell:
                        degraded_cell.append((
                            create_session(result, executor="plan",
                                           timeout_s=self.config.timeout_s),
                            _BatchWatchdog(f"{label}/degraded")))
                    fb_session, fb_watchdog = degraded_cell[0]
                    return fb_watchdog.run(fb_session.run, stacked,
                                           self.config.timeout_s)

                dispatcher = ResilientDispatcher(
                    primary, resilience, recover=recover,
                    fallback=degraded if resilience.degrade else None,
                    name=label)

                def run_batch(stacked: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
                    try:
                        return dispatcher(stacked)
                    except BaseException:
                        if pool.broken:
                            invalidate()
                        raise

        batchable = self._probe_batchable(run_once, key.input_signature)
        compile_time = time.perf_counter() - start
        self.metrics.record_compile(compile_time)

        policy = (self.config.batch_policy() if batchable
                  else BatchPolicy(max_batch_size=1, max_wait_s=0.0))
        batcher = MicroBatcher(run_batch, policy=policy,
                               metrics=self.metrics, label=label,
                               stack=stacker if batchable else None,
                               tracer=self.tracer)
        artifact = CompiledArtifact(key=key, result=result, session=session,
                                    watchdog=watchdog, batcher=batcher,
                                    compile_time_s=compile_time,
                                    batchable=batchable,
                                    dispatcher=dispatcher,
                                    supervisor=supervisor,
                                    degraded_cell=degraded_cell)
        artifact_cell.append(artifact)
        return artifact

    def _probe_batchable(self, run_once, signature: Tuple) -> bool:
        """Check whether the compiled artifact tolerates batch-axis fusion.

        Runs the artifact once on a single sample and once on a stacked
        batch of two and requires every output to carry the batch on axis 0
        with the first row matching the single-sample run.  Probe inputs are
        synthesized from the *request signature* the artifact is keyed by —
        the exact shapes this artifact will serve — not from the model's
        declared shapes, whose wildcard dims may differ.  Models that bake
        the batch size into static shapes (e.g. BERT's attention reshapes)
        fail the probe and are served one request at a time — still cached
        and warm, just not fused.
        """
        if self.config.max_batch_size <= 1:
            return False
        try:
            single = signature_inputs(signature, batch_size=1, seed=0)
            other = signature_inputs(signature, batch_size=1, seed=1)
            stacked = {name: np.concatenate([single[name], other[name]],
                                            axis=BATCH_AXIS)
                       for name in single}
            reference = run_once(single)
            batched = run_once(stacked)
        except BaseException:  # noqa: BLE001 - any failure means "do not fuse"
            return False
        for name, ref in reference.items():
            ref = np.asarray(ref)
            out = np.asarray(batched[name])
            if out.ndim < 1 or out.shape[0] != 2 or out.shape[1:] != ref.shape[1:]:
                return False
            if not np.allclose(out[:1], ref, rtol=1e-4, atol=1e-5, equal_nan=True):
                return False
        return True

    def _on_evict(self, key: ArtifactKey, artifact: CompiledArtifact) -> None:
        self.metrics.record_eviction()
        artifact.close()

    def _collect_artifact_metrics(self, registry) -> None:
        """Publish per-artifact plan/arena/binding gauges into the registry.

        Runs as a pull collector before every registry snapshot/exposition,
        so one ``registry.snapshot()`` exposes the serving counters, every
        cached artifact's arena allocations/reuses and its output-binding
        direct/copy writes together.
        """
        gauge = registry.gauge
        cache = self._cache.stats()
        gauge("serving_cached_artifacts",
              "Compiled artifacts currently cached").set(cache["size"])
        for artifact in self._cache.values():
            session = artifact.session
            if session is None or session.closed:
                continue
            stats = session.stats()
            labels = {"model": artifact.model_name,
                      "artifact": artifact.key.short()}
            plan_stats = stats.get("plan")
            if plan_stats is not None:
                arena = plan_stats["arena"]
                gauge("serving_plan_arena_allocations",
                      "Arena buffer allocations of a cached artifact's plan",
                      labels=labels).set(arena["allocations"])
                gauge("serving_plan_arena_reuses",
                      "Arena buffer reuses of a cached artifact's plan",
                      labels=labels).set(arena["reuses"])
                binding = plan_stats["output_binding"]
                gauge("serving_plan_output_direct_writes",
                      "Bound outputs written in place by a cached plan",
                      labels=labels).set(binding["direct_writes"])
                gauge("serving_plan_output_copy_writes",
                      "Bound outputs finalized by copy in a cached plan",
                      labels=labels).set(binding["copy_writes"])
            if stats.get("pool_clusters") is not None:
                gauge("serving_pool_clusters",
                      "Warm worker-pool clusters of a cached artifact",
                      labels=labels).set(stats["pool_clusters"])
            pool_stats = stats.get("pool")
            if pool_stats is not None:
                gauge("serving_pool_runs_total",
                      "Completed pool runs of a cached artifact",
                      labels=labels).set(pool_stats["runs"])
                gauge("serving_pool_failures_total",
                      "Failed pool runs of a cached artifact",
                      labels=labels).set(pool_stats["failures"])
                gauge("serving_pool_restarts_total",
                      "Worker restarts of a cached artifact's pool",
                      labels=labels).set(pool_stats["restarts"])
                gauge("serving_pool_respawns_total",
                      "Single workers respawned in a cached artifact's pool",
                      labels=labels).set(pool_stats["respawns"])
                gauge("serving_pool_execute_seconds_total",
                      "Cumulative worker execute time of a cached artifact",
                      labels=labels).set(pool_stats["execute_ns_total"] / 1e9)
            if artifact.dispatcher is not None:
                dstats = artifact.dispatcher.stats()
                gauge("serving_resilience_retries_total",
                      "Batches re-dispatched after a primary failure",
                      labels=labels).set(dstats["retries"])
                gauge("serving_resilience_recoveries_total",
                      "Session recoveries run between retry attempts",
                      labels=labels).set(dstats["recoveries"])
                gauge("serving_resilience_degraded_runs_total",
                      "Batches served by the degraded plan fallback",
                      labels=labels).set(dstats["degraded_runs"])
                gauge("serving_resilience_breaker_opens_total",
                      "Times the artifact's circuit breaker tripped",
                      labels=labels).set(dstats["breaker"]["opens"])
                gauge("serving_resilience_breaker_state",
                      "Breaker state (0=closed, 1=half-open, 2=open)",
                      labels=labels).set(
                          {"closed": 0, "half-open": 1, "open": 2}.get(
                              dstats["breaker"]["state"], -1))
            if artifact.supervisor is not None:
                sstats = artifact.supervisor.stats()
                gauge("serving_supervisor_respawns_total",
                      "Workers respawned by the artifact's supervisor",
                      labels=labels).set(sstats["respawns"])
                gauge("serving_supervisor_wedges_detected_total",
                      "Wedged workers detected by the artifact's supervisor",
                      labels=labels).set(sstats["wedges_detected"])

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self, model: Model, inputs: Mapping[str, np.ndarray]):
        """Check a request against the model's declared graph inputs.

        The leading (batch) dimension of every input is free; all other
        dimensions must match the declaration exactly (``None`` dims are
        wildcards).  Every input in one request must agree on its batch
        length.  Returns ``(arrays, batch_len, signature)`` where the
        signature is the cache-key component describing the request shape.
        """
        declared = {info.name: info for info in model.graph.inputs}
        unknown = sorted(set(inputs) - set(declared))
        if unknown:
            raise ShapeMismatchError(
                f"model {model.name!r} has no inputs named {unknown}; "
                f"expected {sorted(declared)}")
        missing = sorted(set(declared) - set(inputs))
        if missing:
            raise ShapeMismatchError(
                f"request for model {model.name!r} is missing inputs {missing}")

        arrays: Dict[str, np.ndarray] = {}
        batch_len: Optional[int] = None
        signature = []
        for name in sorted(declared):
            array = np.asarray(inputs[name])
            info = declared[name]
            shape = info.shape
            if shape is not None:
                if array.ndim != len(shape):
                    raise ShapeMismatchError(
                        f"input {name!r} of model {model.name!r}: expected "
                        f"{len(shape)} dimensions {tuple(shape)}, got shape "
                        f"{array.shape}")
                for axis, declared_dim in enumerate(shape):
                    if axis == 0 or declared_dim is None:
                        continue  # batch axis / wildcard
                    if array.shape[axis] != declared_dim:
                        raise ShapeMismatchError(
                            f"input {name!r} of model {model.name!r}: axis "
                            f"{axis} must be {declared_dim}, got {array.shape[axis]} "
                            f"(full shape {array.shape} vs declared {tuple(shape)})")
            this_len = int(array.shape[0]) if array.ndim >= 1 else 1
            if batch_len is None:
                batch_len = this_len
            elif this_len != batch_len:
                raise ShapeMismatchError(
                    f"request for model {model.name!r} mixes batch lengths: "
                    f"input {name!r} has {this_len}, earlier inputs {batch_len}")
            arrays[name] = array
            signature.append((name, str(array.dtype), tuple(array.shape[1:])))
        return arrays, batch_len or 1, tuple(signature)


# ---------------------------------------------------------------------------
# Input synthesis and load-generation helpers (CLI, benchmarks, examples)
# ---------------------------------------------------------------------------
def signature_inputs(signature: Tuple, batch_size: int = 1,
                     seed: int = 0) -> Dict[str, np.ndarray]:
    """Random inputs matching a request signature (name, dtype, tail shape)."""
    rng = np.random.default_rng(seed)
    feed: Dict[str, np.ndarray] = {}
    for name, dtype, tail in signature:
        shape = (batch_size,) + tuple(tail)
        if str(dtype).startswith("int") or str(dtype).startswith("uint"):
            feed[name] = rng.integers(0, 100, size=shape).astype(dtype)
        else:
            feed[name] = rng.standard_normal(shape).astype(dtype)
    return feed


def example_inputs(model: Model, batch_size: int = 1, seed: int = 0) -> Dict[str, np.ndarray]:
    """Random inputs matching a model's declared signature.

    ``None`` dims resolve to 1 except the leading (batch) axis which takes
    ``batch_size``; integer inputs are drawn from [0, 100).
    """
    rng = np.random.default_rng(seed)
    feed: Dict[str, np.ndarray] = {}
    for info in model.graph.inputs:
        shape = list(info.shape or (1,))
        shape = [1 if d is None else d for d in shape]
        if shape:
            shape[0] = batch_size
        if info.dtype.value.startswith("int"):
            feed[info.name] = rng.integers(0, 100, size=shape).astype(info.dtype.value)
        else:
            feed[info.name] = rng.standard_normal(shape).astype(np.float32)
    return feed


def drive_load(engine: InferenceEngine, model: Model, num_requests: int,
               concurrency: int = 8) -> Dict[str, float]:
    """Fire ``num_requests`` concurrent requests at the engine; report rps.

    Each caller thread submits and waits (``engine.infer``), so up to
    ``concurrency`` requests are in flight at once — the condition under
    which the micro-batcher actually batches.
    """
    def one_request(i: int) -> None:
        engine.infer(model, example_inputs(model, seed=i))

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=concurrency) as executor:
        futures = [executor.submit(one_request, i) for i in range(num_requests)]
        for future in futures:
            future.result()
    elapsed = time.perf_counter() - start
    return {"requests": num_requests, "elapsed_s": elapsed,
            "rps": num_requests / elapsed if elapsed > 0 else float("inf")}


def naive_throughput(model: Model, num_requests: int = 3,
                     pipeline_config: Optional[PipelineConfig] = None,
                     backend: str = "thread") -> Dict[str, float]:
    """Requests/sec of the pre-serving path: full recompile per request.

    This is what every invocation cost before the serving layer existed —
    ``ramiel_compile`` plus one parallel execution, with nothing reused —
    and is the baseline the serving benchmark compares against.
    """
    config = pipeline_config or PipelineConfig()
    start = time.perf_counter()
    for i in range(num_requests):
        result = ramiel_compile(model, config=dataclasses.replace(
            config, generate_code=True))
        result.run_parallel(example_inputs(model, seed=i), backend=backend)
    elapsed = time.perf_counter() - start
    return {"requests": num_requests, "elapsed_s": elapsed,
            "rps": num_requests / elapsed if elapsed > 0 else float("inf")}
