"""repro.serving — batched inference serving on top of Ramiel-compiled schedules.

The rest of the package is one-shot: compile a model, execute it once.
This subsystem amortizes that work across request traffic:

* :mod:`repro.serving.engine` — :class:`InferenceEngine`, the front door:
  validate → cache-or-compile → micro-batch → warm-pool execute.
* :mod:`repro.serving.artifact_cache` — compile-exactly-once LRU cache of
  compiled artifacts keyed by (model fingerprint, config fingerprint,
  input signature).
* :mod:`repro.serving.batching` — the dynamic micro-batcher (max batch
  size / max wait policy, batch-axis stacking and scattering).
* :mod:`repro.serving.metrics` — throughput, latency percentiles,
  batch-size histogram and cache statistics.
* :mod:`repro.serving.qos` — multi-tenant admission control: weighted
  deadline-aware fair queueing, bounded-queue backpressure (429/503 +
  Retry-After), per-artifact concurrency caps and per-tenant artifact
  cache quotas.  The HTTP transport over all of this lives in
  :mod:`repro.gateway`.

See ``examples/serving_demo.py`` and the ``repro serve-bench`` /
``repro warmup`` CLI verbs.
"""

from repro.serving.artifact_cache import ArtifactCache, ArtifactKey
from repro.serving.batching import (
    BATCH_AXIS,
    BatcherClosed,
    BatchPolicy,
    MicroBatcher,
    ServingError,
    scatter_outputs,
    stack_requests,
)
from repro.serving.engine import (
    CompiledArtifact,
    EngineConfig,
    InferenceEngine,
    ShapeMismatchError,
    drive_load,
    example_inputs,
    naive_throughput,
    signature_inputs,
)
from repro.serving.metrics import ServingMetrics
from repro.serving.qos import (
    AdmissionQueue,
    DeadlineExpired,
    EngineOverloaded,
    QoSConfig,
    QoSError,
    QoSFrontend,
    TenantConfig,
    TenantQueueFull,
    UnknownTenant,
)

__all__ = [
    "AdmissionQueue",
    "DeadlineExpired",
    "EngineOverloaded",
    "QoSConfig",
    "QoSError",
    "QoSFrontend",
    "TenantConfig",
    "TenantQueueFull",
    "UnknownTenant",
    "ArtifactCache",
    "ArtifactKey",
    "BATCH_AXIS",
    "BatchPolicy",
    "BatcherClosed",
    "CompiledArtifact",
    "EngineConfig",
    "InferenceEngine",
    "MicroBatcher",
    "ServingError",
    "ServingMetrics",
    "ShapeMismatchError",
    "drive_load",
    "example_inputs",
    "naive_throughput",
    "scatter_outputs",
    "signature_inputs",
    "stack_requests",
]
