"""Thread-safe serving metrics: throughput, latency percentiles, batches, cache.

One :class:`ServingMetrics` instance is shared by an
:class:`~repro.serving.engine.InferenceEngine`, its micro-batchers and its
artifact cache.  Everything is recorded under a single lock (the recorded
quantities are tiny compared to operator execution) and exported as a plain
dict via :meth:`ServingMetrics.snapshot`, which
:func:`repro.analysis.reports.render_serving_report` renders as text.
"""

from __future__ import annotations

import collections
import threading
import time
from typing import Dict, List, Optional

import numpy as np


def percentile(samples: List[float], q: float) -> Optional[float]:
    """``q``-th percentile of ``samples`` (None when empty)."""
    if not samples:
        return None
    return float(np.percentile(np.asarray(samples, dtype=np.float64), q))


class ServingMetrics:
    """Accumulates per-request, per-batch and cache statistics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        """Drop all recorded samples and counters."""
        with self._lock:
            self._submitted = 0
            self._completed = 0
            self._failed = 0
            self._latencies_s: List[float] = []
            self._batch_sizes: List[int] = []
            self._cache_hits = 0
            self._cache_misses = 0
            self._compiles = 0
            self._compile_time_s = 0.0
            self._evictions = 0
            self._first_submit_t: Optional[float] = None
            self._last_done_t: Optional[float] = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_submitted(self) -> None:
        """One request entered the engine."""
        with self._lock:
            self._submitted += 1
            if self._first_submit_t is None:
                self._first_submit_t = time.perf_counter()

    def record_completed(self, latency_s: float, ok: bool = True) -> None:
        """One request finished after ``latency_s``.

        Failed requests count toward ``failed`` but are excluded from the
        latency percentiles: a 300s batch timeout is a failure, not a p99.
        """
        with self._lock:
            if ok:
                self._completed += 1
                self._latencies_s.append(latency_s)
            else:
                self._failed += 1
            self._last_done_t = time.perf_counter()

    def record_batch(self, size: int) -> None:
        """One micro-batch of ``size`` requests was executed."""
        with self._lock:
            self._batch_sizes.append(int(size))

    def record_cache(self, hit: bool) -> None:
        """One compiled-artifact cache lookup."""
        with self._lock:
            if hit:
                self._cache_hits += 1
            else:
                self._cache_misses += 1

    def record_compile(self, seconds: float) -> None:
        """One Ramiel compilation was performed (a cache miss was filled)."""
        with self._lock:
            self._compiles += 1
            self._compile_time_s += seconds

    def record_eviction(self) -> None:
        """One artifact was evicted from the cache."""
        with self._lock:
            self._evictions += 1

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """All metrics as a plain dict (stable keys; values None when unseen).

        Throughput is completed requests divided by the span from the first
        ``submit`` to the last completion — the steady-state serving rate,
        not an average over idle time before/after the load.  Latency
        percentiles cover successfully completed requests only.
        """
        with self._lock:
            latencies_ms = [s * 1e3 for s in self._latencies_s]
            span = None
            if self._first_submit_t is not None and self._last_done_t is not None:
                span = max(self._last_done_t - self._first_submit_t, 1e-9)
            lookups = self._cache_hits + self._cache_misses
            return {
                "submitted": self._submitted,
                "completed": self._completed,
                "failed": self._failed,
                "throughput_rps": (self._completed / span) if span else None,
                "latency_ms": {
                    "p50": percentile(latencies_ms, 50),
                    "p95": percentile(latencies_ms, 95),
                    "p99": percentile(latencies_ms, 99),
                    "mean": float(np.mean(latencies_ms)) if latencies_ms else None,
                    "max": max(latencies_ms) if latencies_ms else None,
                },
                "batches": len(self._batch_sizes),
                "mean_batch_size": (float(np.mean(self._batch_sizes))
                                    if self._batch_sizes else None),
                "batch_histogram": dict(sorted(
                    collections.Counter(self._batch_sizes).items())),
                "cache": {
                    "hits": self._cache_hits,
                    "misses": self._cache_misses,
                    "hit_rate": (self._cache_hits / lookups) if lookups else None,
                    "compiles": self._compiles,
                    "compile_time_s": round(self._compile_time_s, 4),
                    "evictions": self._evictions,
                },
            }
