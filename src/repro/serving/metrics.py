"""Thread-safe serving metrics: throughput, latency percentiles, batches, cache.

One :class:`ServingMetrics` instance is shared by an
:class:`~repro.serving.engine.InferenceEngine`, its micro-batchers and its
artifact cache.  Everything is recorded under a single lock (the recorded
quantities are tiny compared to operator execution) and exported as a plain
dict via :meth:`ServingMetrics.snapshot`, which
:func:`repro.analysis.reports.render_serving_report` renders as text.

Memory is **bounded**: latency samples live in a fixed-capacity reservoir
(Vitter's algorithm R — a uniform sample of the whole stream, so the
percentiles stay statistically representative over arbitrarily long
``serve-bench`` runs), while count / sum / max run as exact scalars and the
batch histogram is a counter keyed by the handful of distinct sizes.

Binding a :class:`~repro.observability.MetricsRegistry` (see
:meth:`bind_registry`, done automatically by the engine) mirrors every
recording into Prometheus-style instruments — ``serving_*`` counters, a
``serving_request_latency_seconds`` histogram and derived gauges refreshed
by a pull collector — so one registry snapshot covers serving alongside the
plan/arena/binding counters the sessions publish.
"""

from __future__ import annotations

import collections
import random
import threading
import time
from typing import Dict, List, Optional

import numpy as np

#: Default capacity of the latency/batch sample reservoirs.  At 2048
#: float64 samples the retained window is ~16 KB per metric while p99
#: estimates stay within a fraction of a percentile of exact on uniform
#: reservoir samples.
DEFAULT_SAMPLE_CAPACITY = 2048


def percentile(samples: List[float], q: float) -> Optional[float]:
    """``q``-th percentile of ``samples`` (None when empty)."""
    if not samples:
        return None
    return float(np.percentile(np.asarray(samples, dtype=np.float64), q))


class _Reservoir:
    """Fixed-capacity uniform sample of a stream (Vitter's algorithm R).

    Not thread-safe on its own — callers hold the metrics lock.  The RNG is
    private and deterministically seeded so metric snapshots are
    reproducible run-to-run given the same request stream.
    """

    __slots__ = ("capacity", "count", "samples", "_rng")

    def __init__(self, capacity: int = DEFAULT_SAMPLE_CAPACITY,
                 seed: int = 0x5EED) -> None:
        if capacity < 1:
            raise ValueError("reservoir capacity must be >= 1")
        self.capacity = int(capacity)
        self.count = 0
        self.samples: List[float] = []
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        self.count += 1
        if len(self.samples) < self.capacity:
            self.samples.append(value)
            return
        slot = self._rng.randrange(self.count)
        if slot < self.capacity:
            self.samples[slot] = value

    def clear(self) -> None:
        self.count = 0
        self.samples = []


class ServingMetrics:
    """Accumulates per-request, per-batch and cache statistics.

    Parameters
    ----------
    sample_capacity:
        Reservoir size for latency samples; memory stays bounded at this
        many floats no matter how long the engine serves.
    registry:
        Optional :class:`~repro.observability.MetricsRegistry` to mirror
        into from the start (equivalent to calling :meth:`bind_registry`).
    """

    def __init__(self, sample_capacity: int = DEFAULT_SAMPLE_CAPACITY,
                 registry=None) -> None:
        self._lock = threading.Lock()
        self._sample_capacity = int(sample_capacity)
        self._registry = None
        self._mirror = None
        self.reset()
        if registry is not None:
            self.bind_registry(registry)

    def reset(self) -> None:
        """Drop all recorded samples and counters.

        A bound registry's ``serving_*`` mirror family is reset too, so a
        post-warmup reset re-zeroes the measured window everywhere.
        """
        with self._lock:
            if self._mirror is not None:
                self._mirror.reset()
            self._submitted = 0
            self._completed = 0
            self._failed = 0
            self._latency_reservoir = _Reservoir(self._sample_capacity)
            self._latency_sum_s = 0.0
            self._latency_max_s: Optional[float] = None
            self._batches = 0
            self._batch_size_sum = 0
            self._batch_histogram: collections.Counter = collections.Counter()
            self._cache_hits = 0
            self._cache_misses = 0
            self._compiles = 0
            self._compile_time_s = 0.0
            self._evictions = 0
            self._first_submit_t: Optional[float] = None
            self._last_done_t: Optional[float] = None

    # ------------------------------------------------------------------
    # Registry mirroring
    # ------------------------------------------------------------------
    def bind_registry(self, registry) -> None:
        """Mirror every recording into ``registry`` from now on.

        Creates the ``serving_*`` instrument family (monotonic counters, a
        ``serving_request_latency_seconds`` histogram, per-size batch
        counters) and registers a pull collector that refreshes the derived
        gauges — throughput, latency quantiles, cache hit rate, mean batch
        size — from :meth:`snapshot` before every registry export.
        """
        with self._lock:
            if self._registry is registry:
                return
            if self._registry is not None:
                raise ValueError(
                    "ServingMetrics is already bound to a different "
                    "MetricsRegistry")
            self._registry = registry
            self._mirror = _RegistryMirror(registry)
            registry.register_collector(self._refresh_derived)

    @property
    def registry(self):
        """The bound :class:`MetricsRegistry`, if any."""
        return self._registry

    def _refresh_derived(self, _registry) -> None:
        snap = self.snapshot()
        mirror = self._mirror
        if mirror is None:
            return
        mirror.throughput.set(snap["throughput_rps"])
        for quantile, value in snap["latency_ms"].items():
            mirror.latency_gauge(quantile).set(value)
        mirror.batch_size_mean.set(snap["mean_batch_size"])
        mirror.cache_hit_rate.set(snap["cache"]["hit_rate"])

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_submitted(self) -> None:
        """One request entered the engine."""
        with self._lock:
            self._submitted += 1
            if self._first_submit_t is None:
                self._first_submit_t = time.perf_counter()
            mirror = self._mirror
        if mirror is not None:
            mirror.submitted.inc()

    def record_completed(self, latency_s: float, ok: bool = True) -> None:
        """One request finished after ``latency_s``.

        Failed requests count toward ``failed`` but are excluded from the
        latency percentiles: a 300s batch timeout is a failure, not a p99.
        """
        with self._lock:
            if ok:
                self._completed += 1
                self._latency_reservoir.add(latency_s)
                self._latency_sum_s += latency_s
                if self._latency_max_s is None or latency_s > self._latency_max_s:
                    self._latency_max_s = latency_s
            else:
                self._failed += 1
            self._last_done_t = time.perf_counter()
            mirror = self._mirror
        if mirror is not None:
            if ok:
                mirror.completed.inc()
                mirror.latency_hist.observe(latency_s)
            else:
                mirror.failed.inc()

    def record_batch(self, size: int) -> None:
        """One micro-batch of ``size`` requests was executed."""
        size = int(size)
        with self._lock:
            self._batches += 1
            self._batch_size_sum += size
            self._batch_histogram[size] += 1
            mirror = self._mirror
        if mirror is not None:
            mirror.batches.inc()
            mirror.batch_size_counter(size).inc()

    def record_cache(self, hit: bool) -> None:
        """One compiled-artifact cache lookup."""
        with self._lock:
            if hit:
                self._cache_hits += 1
            else:
                self._cache_misses += 1
            mirror = self._mirror
        if mirror is not None:
            (mirror.cache_hits if hit else mirror.cache_misses).inc()

    def record_compile(self, seconds: float) -> None:
        """One Ramiel compilation was performed (a cache miss was filled)."""
        with self._lock:
            self._compiles += 1
            self._compile_time_s += seconds
            mirror = self._mirror
        if mirror is not None:
            mirror.compiles.inc()
            mirror.compile_seconds.inc(seconds)

    def record_eviction(self) -> None:
        """One artifact was evicted from the cache."""
        with self._lock:
            self._evictions += 1
            mirror = self._mirror
        if mirror is not None:
            mirror.evictions.inc()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """All metrics as a plain dict (stable keys; values None when unseen).

        Throughput is completed requests divided by the span from the first
        ``submit`` to the last completion — the steady-state serving rate,
        not an average over idle time before/after the load.  Latency
        percentiles cover the retained reservoir window of successfully
        completed requests (a uniform sample of the whole run); mean and
        max are exact over every completion.
        """
        with self._lock:
            latencies_ms = [s * 1e3 for s in self._latency_reservoir.samples]
            completed = self._completed
            span = None
            if self._first_submit_t is not None and self._last_done_t is not None:
                span = max(self._last_done_t - self._first_submit_t, 1e-9)
            lookups = self._cache_hits + self._cache_misses
            return {
                "submitted": self._submitted,
                "completed": completed,
                "failed": self._failed,
                "throughput_rps": (completed / span) if span else None,
                "latency_ms": {
                    "p50": percentile(latencies_ms, 50),
                    "p95": percentile(latencies_ms, 95),
                    "p99": percentile(latencies_ms, 99),
                    "mean": (self._latency_sum_s * 1e3 / completed
                             if completed else None),
                    "max": (self._latency_max_s * 1e3
                            if self._latency_max_s is not None else None),
                },
                "batches": self._batches,
                "mean_batch_size": (self._batch_size_sum / self._batches
                                    if self._batches else None),
                "batch_histogram": dict(sorted(self._batch_histogram.items())),
                "cache": {
                    "hits": self._cache_hits,
                    "misses": self._cache_misses,
                    "hit_rate": (self._cache_hits / lookups) if lookups else None,
                    "compiles": self._compiles,
                    "compile_time_s": round(self._compile_time_s, 4),
                    "evictions": self._evictions,
                },
            }


class _RegistryMirror:
    """The ``serving_*`` instrument family inside one bound registry."""

    def __init__(self, registry) -> None:
        self._registry = registry
        counter = registry.counter
        gauge = registry.gauge
        self.submitted = counter(
            "serving_requests_submitted_total",
            "Requests that entered the engine")
        self.completed = counter(
            "serving_requests_completed_total",
            "Requests that completed successfully")
        self.failed = counter(
            "serving_requests_failed_total", "Requests that failed")
        self.latency_hist = registry.histogram(
            "serving_request_latency_seconds",
            "End-to-end request latency (submit to result)")
        self.batches = counter(
            "serving_batches_total", "Micro-batches executed")
        self.cache_hits = counter(
            "serving_cache_hits_total", "Artifact cache hits")
        self.cache_misses = counter(
            "serving_cache_misses_total", "Artifact cache misses")
        self.compiles = counter(
            "serving_compiles_total", "Ramiel compilations performed")
        self.compile_seconds = counter(
            "serving_compile_seconds_total",
            "Total time spent compiling artifacts")
        self.evictions = counter(
            "serving_cache_evictions_total", "Artifacts evicted from the cache")
        self.throughput = gauge(
            "serving_throughput_rps",
            "Completed requests per second, first submit to last completion")
        self.batch_size_mean = gauge(
            "serving_batch_size_mean", "Mean executed micro-batch size")
        self.cache_hit_rate = gauge(
            "serving_cache_hit_rate", "Artifact cache hit rate")
        self._latency_gauges: Dict[str, object] = {}
        self._batch_counters: Dict[int, object] = {}

    def latency_gauge(self, quantile: str):
        gauge = self._latency_gauges.get(quantile)
        if gauge is None:
            gauge = self._registry.gauge(
                "serving_latency_ms",
                "Request latency summary in milliseconds",
                labels={"quantile": quantile})
            self._latency_gauges[quantile] = gauge
        return gauge

    def batch_size_counter(self, size: int):
        counter = self._batch_counters.get(size)
        if counter is None:
            counter = self._registry.counter(
                "serving_batches_by_size_total",
                "Micro-batches executed, by batch size",
                labels={"size": str(size)})
            self._batch_counters[size] = counter
        return counter

    def reset(self) -> None:
        """Zero every instrument in the ``serving_*`` mirror family."""
        for instrument in (self.submitted, self.completed, self.failed,
                           self.latency_hist, self.batches, self.cache_hits,
                           self.cache_misses, self.compiles,
                           self.compile_seconds, self.evictions,
                           self.throughput, self.batch_size_mean,
                           self.cache_hit_rate):
            instrument.reset()
        for gauge in self._latency_gauges.values():
            gauge.reset()
        for counter in self._batch_counters.values():
            counter.reset()
