"""Multi-tenant quality of service for the serving engine.

The :class:`~repro.serving.engine.InferenceEngine` alone treats every
request identically: first come, first batched.  That is fine for one
well-behaved client, but the moment many tenants share one engine (the
gateway's whole purpose) a single heavy tenant can monopolize the
micro-batchers, flood the queues and evict everyone else's warm
artifacts.  This module adds the admission-control layer that makes
many models x many clients safe:

* **Tenant configuration** — :class:`TenantConfig` gives every tenant a
  scheduling *weight*, a bounded admission queue, an optional default
  per-request *deadline budget* and an optional *cache quota* (how many
  compiled artifacts it may keep resident; see the partition support in
  :class:`~repro.serving.artifact_cache.ArtifactCache`).
* **Weighted, deadline-aware admission** — :class:`AdmissionQueue`
  implements start-time fair queueing: each admitted request is stamped
  with a virtual finish time ``max(V, last_finish[tenant]) +
  cost/weight`` and dispatch always picks the eligible request with the
  smallest stamp, so over any busy interval tenants receive service in
  proportion to their weights regardless of arrival order.  Requests
  whose deadline has already passed are failed at dispatch instead of
  wasting service on answers nobody is waiting for.
* **Backpressure** — both the per-tenant queues and the global queue are
  bounded.  An overflowing submit fails *synchronously* with
  :class:`TenantQueueFull` (HTTP 429) or :class:`EngineOverloaded`
  (HTTP 503), each carrying a ``retry_after_s`` hint derived from the
  observed dispatch rate, so the gateway can emit honest ``Retry-After``
  headers instead of letting latency grow without bound.
* **Per-artifact concurrency caps** — at most
  ``max_artifact_inflight`` admitted requests may be in flight inside
  any one compiled artifact's micro-batcher, so a burst against a slow
  model queues in the *admission* layer (where fairness and deadlines
  apply) rather than deep inside an unaccountable batcher.
* **Retry integration** — dispatch re-routes around a concurrently
  invalidated artifact under the PR 8
  :class:`~repro.resilience.RetryPolicy`, with the request's remaining
  deadline budget installed as the policy's ``deadline_s`` so retries
  never outlive the request they serve.

:class:`QoSFrontend` ties it together for the engine: ``submit`` admits
(or rejects) a validated request, a dispatcher thread drains the
admission queue in weighted order into the engine's artifact batchers,
and everything is observable through ``qos_*`` metrics and
``qos.admit`` / ``qos.queue`` spans in the engine's tracer.
"""

from __future__ import annotations

import collections
import dataclasses
import threading
import time
from concurrent.futures import Future
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.resilience import RetryPolicy
from repro.serving.batching import BatcherClosed, ServingError

__all__ = [
    "AdmissionQueue",
    "DeadlineExpired",
    "EngineOverloaded",
    "QoSConfig",
    "QoSError",
    "QoSFrontend",
    "TenantConfig",
    "TenantQueueFull",
    "UnknownTenant",
]


class QoSError(ServingError):
    """Base class for admission-control failures.

    ``http_status`` is the response code a gateway should map the error
    to; ``retry_after_s``, when set, becomes the ``Retry-After`` header.
    """

    http_status = 503
    retry_after_s: Optional[float] = None

    def __init__(self, message: str,
                 retry_after_s: Optional[float] = None) -> None:
        super().__init__(message)
        if retry_after_s is not None:
            self.retry_after_s = retry_after_s


class TenantQueueFull(QoSError):
    """The tenant's own admission queue is at capacity (HTTP 429)."""

    http_status = 429


class EngineOverloaded(QoSError):
    """The engine-wide queue is full, or the engine is draining (HTTP 503)."""

    http_status = 503


class DeadlineExpired(QoSError):
    """The request's deadline budget ran out before dispatch (HTTP 504)."""

    http_status = 504
    retry_after_s = None


class UnknownTenant(QoSError):
    """Strict-tenancy mode rejected an unregistered tenant (HTTP 403)."""

    http_status = 403
    retry_after_s = None


@dataclasses.dataclass(frozen=True)
class TenantConfig:
    """One tenant's service contract.

    Parameters
    ----------
    name:
        Tenant identifier (matched against the request's tenant field /
        ``X-Tenant`` header).
    weight:
        Scheduling weight: over any busy interval a tenant receives
        service proportional to ``weight / sum(weights of backlogged
        tenants)``.
    max_queue:
        Bound on this tenant's admission queue; the overflowing request
        is rejected with :class:`TenantQueueFull` (HTTP 429) while every
        already-queued request keeps its slot.
    deadline_s:
        Default per-request deadline budget, measured from admission.
        ``None`` means no deadline unless the request carries one.
    cache_quota:
        Maximum compiled artifacts this tenant may keep resident in the
        engine's artifact cache.  When the tenant compiles one more, its
        *own* least-recently-used artifact is evicted — other tenants'
        warm artifacts are never the victim.  ``None`` leaves the tenant
        under the global LRU policy only.
    """

    name: str
    weight: float = 1.0
    max_queue: int = 64
    deadline_s: Optional[float] = None
    cache_quota: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name!r}: weight must be > 0")
        if self.max_queue < 1:
            raise ValueError(f"tenant {self.name!r}: max_queue must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"tenant {self.name!r}: deadline_s must be > 0")
        if self.cache_quota is not None and self.cache_quota < 1:
            raise ValueError(f"tenant {self.name!r}: cache_quota must be >= 1")


@dataclasses.dataclass(frozen=True)
class QoSConfig:
    """Engine-wide admission-control policy.

    Parameters
    ----------
    tenants:
        Pre-registered tenant contracts.  Unknown tenants are admitted
        under ``default_tenant``'s weight/queue/deadline (auto-registered
        on first sight) unless ``strict_tenants`` is set.
    default_tenant:
        Template for requests that name no tenant (or an unregistered
        one); its ``name`` is the tenant id unnamed requests are
        accounted under.
    max_queue_depth:
        Global bound across every tenant queue; overflow rejects with
        :class:`EngineOverloaded` (HTTP 503).
    max_artifact_inflight:
        Per-compiled-artifact cap on admitted-but-unfinished requests.
    dispatch_retry:
        :class:`~repro.resilience.RetryPolicy` for routing a dispatched
        request around a concurrently invalidated artifact
        (:class:`~repro.serving.batching.BatcherClosed`).  A request
        with a deadline gets the *remaining* budget installed as the
        policy's ``deadline_s``.
    strict_tenants:
        Reject requests from unregistered tenants with
        :class:`UnknownTenant` instead of admitting them under the
        default contract.
    """

    tenants: Tuple[TenantConfig, ...] = ()
    default_tenant: TenantConfig = TenantConfig("default")
    max_queue_depth: int = 256
    max_artifact_inflight: int = 32
    dispatch_retry: RetryPolicy = RetryPolicy(
        max_attempts=3, backoff_base_s=0.001, backoff_max_s=0.05,
        jitter=0.0, retry_on=(BatcherClosed,))
    strict_tenants: bool = False

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.max_artifact_inflight < 1:
            raise ValueError("max_artifact_inflight must be >= 1")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in QoS config: {names}")

    def tenant_config(self, name: Optional[str]) -> TenantConfig:
        """The contract for ``name`` (the default template when unknown)."""
        if name is None:
            return self.default_tenant
        for tenant in self.tenants:
            if tenant.name == name:
                return tenant
        if self.strict_tenants:
            raise UnknownTenant(
                f"unknown tenant {name!r}; registered tenants: "
                f"{sorted(t.name for t in self.tenants)}")
        return dataclasses.replace(self.default_tenant, name=name)

    def cache_quota_for(self, name: Optional[str]) -> Optional[int]:
        """Cache-partition quota for a tenant (None = global LRU only)."""
        try:
            return self.tenant_config(name).cache_quota
        except UnknownTenant:
            return None


@dataclasses.dataclass
class _QoSRequest:
    """One admitted request inside the QoS layer."""

    tenant: str
    model: object
    arrays: Dict[str, np.ndarray]
    batch_len: int
    signature: Tuple
    future: Future
    #: absolute deadline on the ``clock`` timeline (None = no budget)
    deadline: Optional[float]
    enqueue_t: float
    #: start-time-fair-queueing stamps (assigned by the admission queue)
    vstart: float = 0.0
    vfinish: float = 0.0
    #: tracing state (populated only when the frontend has a tracer)
    submit_ns: int = 0
    span_id: int = 0


class _TenantState:
    """A tenant's FIFO queue plus its fair-queueing bookkeeping."""

    __slots__ = ("config", "queue", "last_vfinish", "admitted", "rejected",
                 "expired", "completed", "failed")

    def __init__(self, config: TenantConfig) -> None:
        self.config = config
        self.queue: "collections.deque[_QoSRequest]" = collections.deque()
        self.last_vfinish = 0.0
        self.admitted = 0
        self.rejected = 0
        self.expired = 0
        self.completed = 0
        self.failed = 0


class AdmissionQueue:
    """Weighted fair admission queue (start-time fair queueing).

    Each tenant owns a bounded FIFO; across tenants, dispatch order is
    by virtual finish time ``vf = max(V, last_finish[tenant]) +
    cost/weight`` where ``V`` is the queue's virtual clock (the
    ``vstart`` of the last dispatched request) and ``cost`` is the
    request's batch length.  Weighted shares therefore hold over any
    interval in which tenants stay backlogged, while an idle tenant's
    stamp catches up to ``V`` on its next arrival instead of letting it
    bank unused service.

    Not thread-safe by itself: :class:`QoSFrontend` serializes access
    under its own condition variable.  Kept separate so the scheduling
    discipline is unit-testable without an engine.
    """

    def __init__(self, config: QoSConfig) -> None:
        self._config = config
        self._tenants: Dict[str, _TenantState] = {}
        for tenant in config.tenants:
            self._tenants[tenant.name] = _TenantState(tenant)
        self._vtime = 0.0
        self._depth = 0

    # ------------------------------------------------------------------
    def tenant_state(self, name: str) -> _TenantState:
        """The (auto-registered) state for tenant ``name``."""
        state = self._tenants.get(name)
        if state is None:
            state = _TenantState(self._config.tenant_config(name))
            self._tenants[name] = state
        return state

    @property
    def depth(self) -> int:
        """Requests currently queued across every tenant."""
        return self._depth

    def tenant_depths(self) -> Dict[str, int]:
        """Per-tenant queued-request counts."""
        return {name: len(state.queue)
                for name, state in self._tenants.items()}

    # ------------------------------------------------------------------
    def push(self, request: _QoSRequest) -> None:
        """Admit one request, stamping its virtual start/finish times.

        Raises :class:`TenantQueueFull` / :class:`EngineOverloaded` when
        the tenant or global bound is hit — the *new* request is the one
        rejected; queued requests always keep their slots.
        """
        state = self.tenant_state(request.tenant)
        if self._depth >= self._config.max_queue_depth:
            raise EngineOverloaded(
                f"admission queue is full ({self._depth} queued, global "
                f"bound {self._config.max_queue_depth})")
        if len(state.queue) >= state.config.max_queue:
            raise TenantQueueFull(
                f"tenant {request.tenant!r} has {len(state.queue)} queued "
                f"requests (bound {state.config.max_queue})")
        cost = max(float(request.batch_len), 1.0)
        request.vstart = max(self._vtime, state.last_vfinish)
        request.vfinish = request.vstart + cost / state.config.weight
        state.last_vfinish = request.vfinish
        state.queue.append(request)
        state.admitted += 1
        self._depth += 1

    def pop(self, eligible: Optional[Callable[[_QoSRequest], bool]] = None
            ) -> Optional[_QoSRequest]:
        """Dispatch the eligible request with the smallest finish stamp.

        ``eligible`` lets the caller skip requests whose target artifact
        is at its concurrency cap.  Ineligible requests do *not* block
        the rest of their tenant's queue: the scan takes each tenant's
        first eligible entry (within a tenant stamps are monotone, so
        that entry carries the tenant's smallest stamp — per-artifact
        FIFO is preserved, while requests for other artifacts may
        overtake a capped one).  Returns ``None`` when nothing is
        eligible.
        """
        best: Optional[_QoSRequest] = None
        best_state: Optional[_TenantState] = None
        best_idx = -1
        for state in self._tenants.values():
            for idx, head in enumerate(state.queue):
                if eligible is not None and not eligible(head):
                    continue
                if best is None or head.vfinish < best.vfinish:
                    best = head
                    best_state = state
                    best_idx = idx
                break  # first eligible = this tenant's smallest stamp
        if best is None or best_state is None:
            return None
        del best_state.queue[best_idx]
        self._depth -= 1
        self._vtime = max(self._vtime, best.vstart)
        return best

    def drain_all(self) -> List[_QoSRequest]:
        """Remove and return every queued request (engine shutdown)."""
        drained: List[_QoSRequest] = []
        for state in self._tenants.values():
            drained.extend(state.queue)
            state.queue.clear()
        self._depth = 0
        return drained


class QoSFrontend:
    """The engine-side owner of admission control and weighted dispatch.

    ``submit`` performs synchronous admission (reject fast, queue
    cheap); a daemon dispatcher thread pops requests in weighted order,
    enforces deadlines and per-artifact concurrency caps, and forwards
    into the engine's micro-batchers.  The engine calls :meth:`drain`
    and :meth:`close` from its own shutdown path.
    """

    #: fallback Retry-After hint before any dispatch-rate estimate exists
    _DEFAULT_RETRY_AFTER_S = 0.1

    def __init__(self, engine, config: QoSConfig, *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._engine = engine
        self.config = config
        self._clock = clock
        self._queue = AdmissionQueue(config)
        self._cond = threading.Condition()
        self._inflight: Dict[object, int] = collections.Counter()
        self._inflight_total = 0
        self._draining = False
        self._closed = False
        #: EWMA of inter-dispatch intervals, feeding Retry-After hints
        self._dispatch_interval_ewma: Optional[float] = None
        self._last_dispatch_t: Optional[float] = None
        self._instruments(engine.registry)
        self._thread = threading.Thread(target=self._dispatch_loop,
                                        daemon=True, name="qos-dispatch")
        self._thread.start()

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _instruments(self, registry) -> None:
        self._registry = registry
        self._admitted_counters: Dict[str, object] = {}
        self._rejected_counters: Dict[Tuple[str, str], object] = {}
        self._completed_counters: Dict[Tuple[str, str], object] = {}
        self._queue_wait_hist = registry.histogram(
            "qos_queue_wait_seconds",
            "Admission-to-dispatch wait of admitted requests")
        registry.register_collector(self._collect)

    def _collect(self, registry) -> None:
        with self._cond:
            depths = self._queue.tenant_depths()
            inflight = self._inflight_total
        for tenant, depth in depths.items():
            registry.gauge("qos_queue_depth",
                           "Requests waiting in a tenant's admission queue",
                           labels={"tenant": tenant}).set(depth)
        registry.gauge("qos_inflight_requests",
                       "Admitted requests currently inside micro-batchers"
                       ).set(inflight)
        registry.gauge("qos_draining",
                       "1 while the engine is draining (rejecting new work)"
                       ).set(1 if self._draining else 0)

    def _count_admitted(self, tenant: str) -> None:
        counter = self._admitted_counters.get(tenant)
        if counter is None:
            counter = self._registry.counter(
                "qos_admitted_total", "Requests admitted past QoS",
                labels={"tenant": tenant})
            self._admitted_counters[tenant] = counter
        counter.inc()

    def _count_rejected(self, tenant: str, reason: str) -> None:
        key = (tenant, reason)
        counter = self._rejected_counters.get(key)
        if counter is None:
            counter = self._registry.counter(
                "qos_rejected_total",
                "Requests rejected by QoS, by tenant and reason",
                labels={"tenant": tenant, "reason": reason})
            self._rejected_counters[key] = counter
        counter.inc()

    def _count_done(self, tenant: str, outcome: str) -> None:
        key = (tenant, outcome)
        counter = self._completed_counters.get(key)
        if counter is None:
            counter = self._registry.counter(
                "qos_requests_done_total",
                "Admitted requests resolved, by tenant and outcome",
                labels={"tenant": tenant, "outcome": outcome})
            self._completed_counters[key] = counter
        counter.inc()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, model, arrays: Dict[str, np.ndarray], batch_len: int,
               signature: Tuple, *, tenant: Optional[str] = None,
               deadline_s: Optional[float] = None) -> Future:
        """Admit one validated request; returns its future or rejects.

        Rejections (queue full, overloaded, expired budget, unknown
        tenant under strict tenancy) raise synchronously — nothing of a
        rejected request ever reaches a queue.
        """
        tracer = self._engine.tracer
        t0 = tracer.now() if tracer is not None else 0
        try:
            request = self._admit(model, arrays, batch_len, signature,
                                  tenant=tenant, deadline_s=deadline_s)
        except QoSError as exc:
            if tracer is not None:
                tracer.emit("qos.admit", "qos", t0, tracer.now(),
                            args={"tenant": tenant or "", "rejected":
                                  type(exc).__name__})
            raise
        if tracer is not None:
            request.submit_ns = t0
            request.span_id = tracer.next_async_id()
            tracer.emit("qos.admit", "qos", t0, tracer.now(),
                        args={"tenant": request.tenant})
        return request.future

    def _admit(self, model, arrays, batch_len, signature, *,
               tenant: Optional[str], deadline_s: Optional[float]
               ) -> _QoSRequest:
        config = self.config.tenant_config(tenant)  # raises UnknownTenant
        name = tenant if tenant is not None else config.name
        budget = deadline_s if deadline_s is not None else config.deadline_s
        now = self._clock()
        if budget is not None and budget <= 0:
            self._count_rejected(name, "expired")
            with self._cond:
                self._queue.tenant_state(name).expired += 1
            raise DeadlineExpired(
                f"request for tenant {name!r} arrived with an already-"
                f"expired deadline budget ({budget}s)")
        request = _QoSRequest(
            tenant=name, model=model, arrays=arrays, batch_len=batch_len,
            signature=signature, future=Future(),
            deadline=(now + budget) if budget is not None else None,
            enqueue_t=now)
        with self._cond:
            if self._draining or self._closed:
                self._count_rejected(name, "draining")
                raise EngineOverloaded(
                    "engine is draining; not accepting new requests",
                    retry_after_s=self._retry_after_locked())
            try:
                self._queue.push(request)
            except TenantQueueFull as exc:
                self._queue.tenant_state(name).rejected += 1
                self._count_rejected(name, "queue_full")
                exc.retry_after_s = self._retry_after_locked(
                    depth=len(self._queue.tenant_state(name).queue))
                raise
            except EngineOverloaded as exc:
                self._queue.tenant_state(name).rejected += 1
                self._count_rejected(name, "overloaded")
                exc.retry_after_s = self._retry_after_locked(
                    depth=self._queue.depth)
                raise
            self._cond.notify_all()
        self._count_admitted(name)
        return request

    def _retry_after_locked(self, depth: int = 1) -> float:
        """Honest Retry-After hint: queued work over observed dispatch rate."""
        interval = self._dispatch_interval_ewma
        if interval is None:
            return self._DEFAULT_RETRY_AFTER_S
        return round(max(self._DEFAULT_RETRY_AFTER_S,
                         min(depth * interval, 30.0)), 3)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _eligible(self, request: _QoSRequest) -> bool:
        key = (id(request.model), request.signature)
        return self._inflight[key] < self.config.max_artifact_inflight

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                request = self._queue.pop(self._eligible)
                while request is None:
                    if self._closed:
                        return
                    self._cond.wait(timeout=0.1)
                    request = self._queue.pop(self._eligible)
                now = self._clock()
                if self._last_dispatch_t is not None:
                    sample = now - self._last_dispatch_t
                    ewma = self._dispatch_interval_ewma
                    self._dispatch_interval_ewma = (
                        sample if ewma is None else 0.8 * ewma + 0.2 * sample)
                self._last_dispatch_t = now
            self._dispatch_one(request, now)

    def _dispatch_one(self, request: _QoSRequest, now: float) -> None:
        tracer = self._engine.tracer
        if tracer is not None and request.span_id:
            tracer.emit_async("qos.queue", "qos", request.span_id,
                              request.submit_ns, tracer.now(),
                              args={"tenant": request.tenant})
        self._queue_wait_hist.observe(now - request.enqueue_t)
        state = self._queue.tenant_state(request.tenant)
        if request.deadline is not None and now >= request.deadline:
            with self._cond:
                state.expired += 1
                self._cond.notify_all()
            self._count_rejected(request.tenant, "expired")
            request.future.set_exception(DeadlineExpired(
                f"deadline budget ran out after "
                f"{now - request.enqueue_t:.3f}s in the admission queue "
                f"(tenant {request.tenant!r})"))
            return
        key = (id(request.model), request.signature)
        with self._cond:
            self._inflight[key] += 1
            self._inflight_total += 1
        try:
            inner = self._route(request)
        except BaseException as exc:  # noqa: BLE001 - fail this request only
            self._release(request, key, None, exc)
            return
        inner.add_done_callback(
            lambda f: self._release(request, key, f, None))

    def _route(self, request: _QoSRequest) -> Future:
        """Route into the artifact's batcher under the dispatch RetryPolicy.

        A request with a deadline gets its *remaining* budget installed
        as the policy's ``deadline_s`` (the PR 8 deadline-budget
        mechanism), so re-routing around an invalidated artifact never
        outlives the request.
        """
        policy = self.config.dispatch_retry
        if request.deadline is not None:
            remaining = request.deadline - self._clock()
            if remaining <= 0:
                raise DeadlineExpired(
                    f"deadline budget exhausted before dispatch "
                    f"(tenant {request.tenant!r})")
            policy = dataclasses.replace(policy, deadline_s=remaining)

        def attempt() -> Future:
            future, _ = self._engine._route_once(
                request.model, request.signature, request.arrays,
                request.batch_len, partition=request.tenant)
            return future

        return policy.call(attempt)

    def _release(self, request: _QoSRequest, key, inner: Optional[Future],
                 exc: Optional[BaseException]) -> None:
        with self._cond:
            self._inflight[key] -= 1
            if self._inflight[key] <= 0:
                del self._inflight[key]
            self._inflight_total -= 1
            state = self._queue.tenant_state(request.tenant)
            failed = exc is not None or (inner is not None
                                         and inner.exception() is not None)
            if failed:
                state.failed += 1
            else:
                state.completed += 1
            self._cond.notify_all()
        self._count_done(request.tenant, "failed" if failed else "ok")
        if exc is not None:
            request.future.set_exception(exc)
        elif inner is not None:
            inner_exc = inner.exception()
            if inner_exc is not None:
                request.future.set_exception(inner_exc)
            else:
                request.future.set_result(inner.result())

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        """True once :meth:`drain` (or :meth:`close`) has begun."""
        return self._draining

    def begin_drain(self) -> None:
        """Start rejecting new submissions without waiting for the queue."""
        with self._cond:
            self._draining = True
            self._cond.notify_all()

    def drain(self, timeout: Optional[float] = 30.0) -> bool:
        """Stop admitting, let queued + in-flight requests finish.

        New submissions are rejected with :class:`EngineOverloaded`
        immediately; every already-admitted request runs to completion.
        Returns ``True`` once the queue and the in-flight set are empty,
        ``False`` on timeout (work may still be running).
        """
        deadline = (time.monotonic() + timeout) if timeout is not None else None
        with self._cond:
            self._draining = True
            self._cond.notify_all()
            while self._queue.depth > 0 or self._inflight_total > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cond.wait(timeout=remaining)
        return True

    def close(self, drain_timeout: float = 5.0) -> None:
        """Drain briefly, fail whatever is still queued, stop the thread."""
        self.drain(timeout=drain_timeout)
        with self._cond:
            self._closed = True
            leftovers = self._queue.drain_all()
            self._cond.notify_all()
        for request in leftovers:
            request.future.set_exception(EngineOverloaded(
                "engine shut down before the request was dispatched"))
        if threading.current_thread() is not self._thread:
            self._thread.join(timeout=2.0)
        self._registry.unregister_collector(self._collect)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Dict]:
        """Per-tenant admission counters and queue depths."""
        with self._cond:
            tenants = {
                name: {
                    "weight": state.config.weight,
                    "queued": len(state.queue),
                    "admitted": state.admitted,
                    "rejected": state.rejected,
                    "expired": state.expired,
                    "completed": state.completed,
                    "failed": state.failed,
                }
                for name, state in self._queue._tenants.items()
            }
            return {
                "tenants": tenants,
                "depth": self._queue.depth,
                "inflight": self._inflight_total,
                "draining": self._draining,
            }
