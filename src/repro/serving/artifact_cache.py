"""LRU cache of compiled serving artifacts, keyed by content fingerprints.

The cache guarantees *compile-exactly-once* semantics: concurrent lookups of
the same key block on a single in-flight compilation instead of racing to
compile twice.  Keys are :class:`ArtifactKey` triples — model fingerprint,
pipeline-config fingerprint and the request input signature — produced by
the hooks in :mod:`repro.pipeline` and :mod:`repro.serving.engine`.

Eviction is LRU over *completed* entries only (an in-flight compilation is
never evicted; the cache may transiently exceed capacity while several keys
compile at once).  Evicted artifacts are handed to the ``on_evict`` callback
so their warm worker pools and batchers can be shut down.
"""

from __future__ import annotations

import collections
import dataclasses
import threading
from concurrent.futures import Future
from typing import Callable, Dict, List, Optional, Tuple


@dataclasses.dataclass(frozen=True)
class ArtifactKey:
    """Identity of one compiled artifact."""

    model_fingerprint: str
    config_fingerprint: str
    input_signature: Tuple

    def short(self) -> str:
        """Compact display form for logs and reports."""
        return f"{self.model_fingerprint[:10]}/{self.config_fingerprint[:8]}"


class ArtifactCache:
    """Thread-safe LRU map of :class:`ArtifactKey` to compiled artifacts."""

    def __init__(self, capacity: int = 8,
                 on_evict: Optional[Callable[[ArtifactKey, object], None]] = None) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._on_evict = on_evict
        self._lock = threading.Lock()
        self._entries: "collections.OrderedDict[ArtifactKey, Future]" = \
            collections.OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    def get_or_create(self, key: ArtifactKey, factory: Callable[[], object]):
        """Return ``(artifact, hit)``; compile via ``factory`` on a miss.

        The factory runs outside the cache lock, but at most once per key:
        concurrent callers of the same key wait on the winner's future.  A
        failing factory removes its entry so the key can be retried.
        """
        evicted: List[Tuple[ArtifactKey, Future]] = []
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._hits += 1
                self._entries.move_to_end(key)
                hit = True
            else:
                self._misses += 1
                entry = Future()
                self._entries[key] = entry
                hit = False
                evicted = self._evict_overflow_locked()

        for evicted_key, evicted_future in evicted:
            self._dispose(evicted_key, evicted_future)

        if hit:
            return entry.result(), True

        try:
            artifact = factory()
        except BaseException as exc:
            with self._lock:
                if self._entries.get(key) is entry:
                    del self._entries[key]
            entry.set_exception(exc)
            raise
        entry.set_result(artifact)
        return artifact, False

    def _evict_overflow_locked(self) -> List[Tuple[ArtifactKey, Future]]:
        """Pop oldest *completed* entries while over capacity (lock held)."""
        evicted: List[Tuple[ArtifactKey, Future]] = []
        while len(self._entries) > self.capacity:
            victim = next((k for k, fut in self._entries.items() if fut.done()), None)
            if victim is None:
                break  # everything in flight; allow transient overflow
            evicted.append((victim, self._entries.pop(victim)))
            self._evictions += 1
        return evicted

    def _dispose(self, key: ArtifactKey, future: Future) -> None:
        if self._on_evict is None or not future.done() or future.exception():
            return
        self._on_evict(key, future.result())

    def _dispose_when_done(self, key: ArtifactKey, future: Future) -> None:
        """Dispose now if the entry is built, else as soon as its compile ends.

        Covers shutdown/invalidation racing an in-flight compilation: the
        artifact (warm pool, batcher thread) built after removal from the
        cache must still be closed, not leaked.
        """
        if future.done():
            self._dispose(key, future)
        else:
            future.add_done_callback(lambda f: self._dispose(key, f))

    # ------------------------------------------------------------------
    def invalidate(self, key: ArtifactKey, expected: Optional[object] = None) -> bool:
        """Drop one entry (e.g. its warm pool broke); returns True if dropped.

        With ``expected`` given, the entry is only dropped if it currently
        resolves to that exact artifact — so a stale holder of an evicted
        artifact cannot knock out a freshly recompiled replacement under
        the same key.
        """
        with self._lock:
            future = self._entries.get(key)
            if future is None:
                return False
            if expected is not None and (not future.done() or future.exception()
                                         or future.result() is not expected):
                return False
            del self._entries[key]
            self._evictions += 1
        self._dispose_when_done(key, future)
        return True

    def clear(self) -> None:
        """Evict every entry (used by engine shutdown)."""
        with self._lock:
            entries = list(self._entries.items())
            self._entries.clear()
        for key, future in entries:
            self._dispose_when_done(key, future)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: ArtifactKey) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> List[ArtifactKey]:
        """Cached keys, LRU-oldest first."""
        with self._lock:
            return list(self._entries)

    def values(self) -> List[object]:
        """Completed artifacts, LRU-oldest first (in-flight/failed skipped).

        Used by the engine's metrics collector to publish per-artifact
        session counters without blocking on in-flight compilations.
        """
        with self._lock:
            futures = list(self._entries.values())
        return [future.result() for future in futures
                if future.done() and future.exception() is None]

    def stats(self) -> Dict[str, int]:
        """Lookup/eviction counters."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }
