"""LRU cache of compiled serving artifacts, keyed by content fingerprints.

The cache guarantees *compile-exactly-once* semantics: concurrent lookups of
the same key block on a single in-flight compilation instead of racing to
compile twice.  Keys are :class:`ArtifactKey` triples — model fingerprint,
pipeline-config fingerprint and the request input signature — produced by
the hooks in :mod:`repro.pipeline` and :mod:`repro.serving.engine`.

Eviction is LRU over *completed* entries only (an in-flight compilation is
never evicted; the cache may transiently exceed capacity while several keys
compile at once).  Evicted artifacts are handed to the ``on_evict`` callback
so their warm worker pools and batchers can be shut down.

**Partitioning** — entries may carry a partition label (the serving QoS
layer passes the tenant that caused the compile).  A ``quota_for``
callback maps partitions to resident-entry quotas: when a partition
exceeds its quota, its *own* least-recently-used completed entry is
evicted, so one heavy tenant churning through models can never evict
another tenant's warm artifacts — only global capacity overflow falls
back to cross-partition LRU, and even then over-quota partitions are
preferred victims.
"""

from __future__ import annotations

import collections
import dataclasses
import threading
from concurrent.futures import Future
from typing import Callable, Dict, List, Optional, Tuple


@dataclasses.dataclass(frozen=True)
class ArtifactKey:
    """Identity of one compiled artifact."""

    model_fingerprint: str
    config_fingerprint: str
    input_signature: Tuple

    def short(self) -> str:
        """Compact display form for logs and reports."""
        return f"{self.model_fingerprint[:10]}/{self.config_fingerprint[:8]}"


class ArtifactCache:
    """Thread-safe LRU map of :class:`ArtifactKey` to compiled artifacts."""

    def __init__(self, capacity: int = 8,
                 on_evict: Optional[Callable[[ArtifactKey, object], None]] = None,
                 quota_for: Optional[Callable[[Optional[str]], Optional[int]]] = None) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._on_evict = on_evict
        self._quota_for = quota_for
        self._lock = threading.Lock()
        self._entries: "collections.OrderedDict[ArtifactKey, Future]" = \
            collections.OrderedDict()
        self._partitions: Dict[ArtifactKey, Optional[str]] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    def get_or_create(self, key: ArtifactKey, factory: Callable[[], object],
                      partition: Optional[str] = None):
        """Return ``(artifact, hit)``; compile via ``factory`` on a miss.

        The factory runs outside the cache lock, but at most once per key:
        concurrent callers of the same key wait on the winner's future.  A
        failing factory removes its entry so the key can be retried.

        ``partition`` labels a newly created entry (a hit keeps the
        original owner's label — artifacts are shared across tenants, the
        partition only decides whose quota funds residency).
        """
        evicted: List[Tuple[ArtifactKey, Future]] = []
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._hits += 1
                self._entries.move_to_end(key)
                hit = True
            else:
                self._misses += 1
                entry = Future()
                self._entries[key] = entry
                self._partitions[key] = partition
                hit = False
                evicted = self._evict_overflow_locked(partition)

        for evicted_key, evicted_future in evicted:
            self._dispose(evicted_key, evicted_future)

        if hit:
            return entry.result(), True

        try:
            artifact = factory()
        except BaseException as exc:
            with self._lock:
                if self._entries.get(key) is entry:
                    del self._entries[key]
                    self._partitions.pop(key, None)
            entry.set_exception(exc)
            raise
        entry.set_result(artifact)
        return artifact, False

    def _partition_size_locked(self, partition: Optional[str]) -> int:
        return sum(1 for part in self._partitions.values() if part == partition)

    def _pop_victim_locked(self, partition: Optional[str] = ...,
                           ) -> Optional[Tuple[ArtifactKey, Future]]:
        """Pop the oldest completed entry, optionally within one partition."""
        for key, future in self._entries.items():
            if not future.done():
                continue
            if partition is not ... and self._partitions.get(key) != partition:
                continue
            self._entries.pop(key)
            self._partitions.pop(key, None)
            self._evictions += 1
            return key, future
        return None

    def _evict_overflow_locked(self, new_partition: Optional[str] = None
                               ) -> List[Tuple[ArtifactKey, Future]]:
        """Pop oldest *completed* entries while over quota/capacity (lock held)."""
        evicted: List[Tuple[ArtifactKey, Future]] = []
        # Per-partition quota first: the inserting tenant evicts its own
        # LRU entry, never another partition's warm artifact.
        if self._quota_for is not None and new_partition is not None:
            quota = self._quota_for(new_partition)
            while (quota is not None
                   and self._partition_size_locked(new_partition) > quota):
                victim = self._pop_victim_locked(new_partition)
                if victim is None:
                    break  # partition entries all in flight; transient overflow
                evicted.append(victim)
        # Global capacity: prefer evicting from over-quota partitions so a
        # quota-less tenant's churn still cannot displace protected ones.
        while len(self._entries) > self.capacity:
            victim = None
            if self._quota_for is not None:
                for part in set(self._partitions.values()):
                    quota = self._quota_for(part) if part is not None else None
                    if (quota is not None
                            and self._partition_size_locked(part) > quota):
                        victim = self._pop_victim_locked(part)
                        if victim is not None:
                            break
            if victim is None:
                victim = self._pop_victim_locked()
            if victim is None:
                break  # everything in flight; allow transient overflow
            evicted.append(victim)
        return evicted

    def _dispose(self, key: ArtifactKey, future: Future) -> None:
        if self._on_evict is None or not future.done() or future.exception():
            return
        self._on_evict(key, future.result())

    def _dispose_when_done(self, key: ArtifactKey, future: Future) -> None:
        """Dispose now if the entry is built, else as soon as its compile ends.

        Covers shutdown/invalidation racing an in-flight compilation: the
        artifact (warm pool, batcher thread) built after removal from the
        cache must still be closed, not leaked.
        """
        if future.done():
            self._dispose(key, future)
        else:
            future.add_done_callback(lambda f: self._dispose(key, f))

    # ------------------------------------------------------------------
    def invalidate(self, key: ArtifactKey, expected: Optional[object] = None) -> bool:
        """Drop one entry (e.g. its warm pool broke); returns True if dropped.

        With ``expected`` given, the entry is only dropped if it currently
        resolves to that exact artifact — so a stale holder of an evicted
        artifact cannot knock out a freshly recompiled replacement under
        the same key.
        """
        with self._lock:
            future = self._entries.get(key)
            if future is None:
                return False
            if expected is not None and (not future.done() or future.exception()
                                         or future.result() is not expected):
                return False
            del self._entries[key]
            self._partitions.pop(key, None)
            self._evictions += 1
        self._dispose_when_done(key, future)
        return True

    def clear(self) -> None:
        """Evict every entry (used by engine shutdown)."""
        with self._lock:
            entries = list(self._entries.items())
            self._entries.clear()
            self._partitions.clear()
        for key, future in entries:
            self._dispose_when_done(key, future)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: ArtifactKey) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> List[ArtifactKey]:
        """Cached keys, LRU-oldest first."""
        with self._lock:
            return list(self._entries)

    def values(self) -> List[object]:
        """Completed artifacts, LRU-oldest first (in-flight/failed skipped).

        Used by the engine's metrics collector to publish per-artifact
        session counters without blocking on in-flight compilations.
        """
        with self._lock:
            futures = list(self._entries.values())
        return [future.result() for future in futures
                if future.done() and future.exception() is None]

    def partition_sizes(self) -> Dict[Optional[str], int]:
        """Resident-entry counts per partition label."""
        with self._lock:
            sizes: Dict[Optional[str], int] = {}
            for part in self._partitions.values():
                sizes[part] = sizes.get(part, 0) + 1
            return sizes

    def stats(self) -> Dict[str, int]:
        """Lookup/eviction counters."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }
