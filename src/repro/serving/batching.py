"""Dynamic micro-batching of concurrent inference requests.

One :class:`MicroBatcher` serves one compiled artifact.  Requests arrive via
:meth:`MicroBatcher.submit` (returning a ``concurrent.futures.Future``); a
background collector thread gathers them into batches under a
:class:`BatchPolicy` — a batch closes when it reaches ``max_batch_size`` or
when ``max_wait_s`` has elapsed since its first request, whichever comes
first.  Inputs are stacked along the batch axis (axis 0), executed once, and
the outputs scattered back to the per-request futures.

Requests reaching the same batcher are guaranteed shape-compatible: the
engine keys artifacts (and therefore batchers) by input signature, which
includes every non-batch dimension.
"""

from __future__ import annotations

import collections
import dataclasses
import threading
import time
from concurrent.futures import Future
from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from repro.serving.metrics import ServingMetrics

#: Requests are stacked/scattered along this axis of every input/output.
BATCH_AXIS = 0


class ServingError(RuntimeError):
    """Base class for serving-layer failures."""


class BatcherClosed(ServingError):
    """Raised when submitting to (or pending inside) a closed batcher."""


@dataclasses.dataclass(frozen=True)
class BatchPolicy:
    """When to close a micro-batch.

    ``max_batch_size`` bounds how many requests are fused into one
    execution; ``max_wait_s`` bounds how long the first request of a batch
    may wait for co-travellers (the tail-latency knob).
    """

    max_batch_size: int = 8
    max_wait_s: float = 0.005

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")


@dataclasses.dataclass
class _Request:
    inputs: Dict[str, np.ndarray]
    batch_len: int
    future: Future
    submit_t: float
    #: tracing state (only populated when the batcher has a tracer): the
    #: submit timestamp on the trace clock and the request's async-span id
    submit_ns: int = 0
    span_id: int = 0


def stack_requests(requests: List[_Request]) -> Dict[str, np.ndarray]:
    """Concatenate the requests' inputs along :data:`BATCH_AXIS`."""
    if len(requests) == 1:
        return dict(requests[0].inputs)
    names = requests[0].inputs.keys()
    return {name: np.concatenate([r.inputs[name] for r in requests], axis=BATCH_AXIS)
            for name in names}


def scatter_outputs(outputs: Mapping[str, np.ndarray],
                    requests: List[_Request]) -> List[Dict[str, np.ndarray]]:
    """Split batched outputs back into per-request dicts.

    An output whose leading dimension equals the total batch length is
    sliced per request; anything else (e.g. a scalar statistic emitted by
    the graph) is replicated to every request unchanged.
    """
    total = sum(r.batch_len for r in requests)
    if len(requests) == 1:
        return [dict(outputs)]
    per_request: List[Dict[str, np.ndarray]] = [dict() for _ in requests]
    offsets = np.cumsum([0] + [r.batch_len for r in requests])
    for name, array in outputs.items():
        array = np.asarray(array)
        sliceable = array.ndim >= 1 and array.shape[BATCH_AXIS] == total
        for i in range(len(requests)):
            if sliceable:
                per_request[i][name] = array[offsets[i]:offsets[i + 1]]
            else:
                per_request[i][name] = array
    return per_request


class MicroBatcher:
    """Collects concurrent requests into batches and executes them.

    Parameters
    ----------
    run_batch:
        Callable executing one stacked input feed and returning the graph
        outputs; typically a warm-pool run of a compiled module.
    policy:
        Batch-closing policy.
    metrics:
        Optional shared :class:`ServingMetrics`; batch sizes and request
        completions are recorded there.
    label:
        Display name (model name / artifact key) for the collector thread.
    stack:
        Optional replacement for :func:`stack_requests`: a callable taking
        the request list and returning whatever ``run_batch`` accepts.  The
        serving engine passes a pinned-staging stacker here so batches are
        written into session-bound buffers instead of a fresh
        ``concatenate`` per batch.
    tracer:
        Optional :class:`~repro.observability.Tracer`.  Each request gets
        an async lifecycle span (``request`` — submit to respond — with a
        nested ``request.queue`` span for its wait, both keyed by the
        request's async id so they render correctly across the caller and
        collector threads), and the collector thread emits ``batch.stack``
        / ``batch.execute`` / ``batch.respond`` spans per micro-batch.
    """

    def __init__(self, run_batch: Callable[[Dict[str, np.ndarray]], Mapping[str, np.ndarray]],
                 policy: Optional[BatchPolicy] = None,
                 metrics: Optional[ServingMetrics] = None,
                 label: str = "batcher",
                 stack: Optional[Callable[[List[_Request]], object]] = None,
                 tracer=None) -> None:
        self.policy = policy or BatchPolicy()
        self.label = label
        self._run_batch = run_batch
        self._stack = stack or stack_requests
        self._metrics = metrics
        self._tracer = tracer
        self._pending: "collections.deque[_Request]" = collections.deque()
        self._cond = threading.Condition()
        self._closed = False
        self._thread = threading.Thread(target=self._collector, daemon=True,
                                        name=f"microbatch-{label}")
        self._thread.start()

    # ------------------------------------------------------------------
    def submit(self, inputs: Mapping[str, np.ndarray], batch_len: int) -> Future:
        """Enqueue one request; the future resolves to its output dict."""
        request = _Request(inputs=dict(inputs), batch_len=int(batch_len),
                           future=Future(), submit_t=time.perf_counter())
        tracer = self._tracer
        if tracer is not None:
            request.submit_ns = tracer.now()
            request.span_id = tracer.next_async_id()
        with self._cond:
            if self._closed:
                raise BatcherClosed(f"batcher {self.label!r} is closed")
            self._pending.append(request)
            self._cond.notify()
        return request.future

    def close(self, join_timeout: float = 5.0) -> None:
        """Stop the collector; pending/unfinished requests fail cleanly."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            leftovers = list(self._pending)
            self._pending.clear()
            self._cond.notify_all()
        for request in leftovers:
            self._fail(request, BatcherClosed(
                f"batcher {self.label!r} closed before the request ran"))
        # close() may be invoked from the collector itself (a failing batch
        # invalidating its own artifact); a thread cannot join itself.
        if threading.current_thread() is not self._thread:
            self._thread.join(timeout=join_timeout)

    # ------------------------------------------------------------------
    def _collector(self) -> None:
        while True:
            batch = self._collect_batch()
            if batch is None:
                return
            self._execute(batch)

    def _collect_batch(self) -> Optional[List[_Request]]:
        """Block for the first request, then fill until policy closes the batch."""
        with self._cond:
            while not self._pending:
                if self._closed:
                    return None
                self._cond.wait()
            batch = [self._pending.popleft()]
            deadline = time.monotonic() + self.policy.max_wait_s
            while len(batch) < self.policy.max_batch_size:
                if self._pending:
                    batch.append(self._pending.popleft())
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._closed:
                    break
                self._cond.wait(timeout=remaining)
            return batch

    def _execute(self, batch: List[_Request]) -> None:
        if self._metrics is not None:
            self._metrics.record_batch(len(batch))
        tracer = self._tracer
        if tracer is not None:
            # Queue-wait spans close the moment the batch starts assembling;
            # async (per-id) spans render correctly even though submit
            # happened on a different thread.
            batch_args = {"size": str(len(batch)), "batcher": self.label}
            t_assemble = tracer.now()
            for request in batch:
                tracer.emit_async("request.queue", "request", request.span_id,
                                  request.submit_ns, t_assemble)
        try:
            stacked = self._stack(batch)
            if tracer is not None:
                t_execute = tracer.now()
                tracer.emit("batch.stack", "serving", t_assemble, t_execute,
                            args=batch_args)
            outputs = self._run_batch(stacked)
            if tracer is not None:
                t_respond = tracer.now()
                tracer.emit("batch.execute", "serving", t_execute, t_respond,
                            args=batch_args)
            scattered = scatter_outputs(outputs, batch)
        except BaseException as exc:  # noqa: BLE001 - fail every co-batched request
            for request in batch:
                self._fail(request, exc)
            return
        for request, result in zip(batch, scattered):
            latency = time.perf_counter() - request.submit_t
            if self._metrics is not None:
                self._metrics.record_completed(latency, ok=True)
            request.future.set_result(result)
        if tracer is not None:
            t_done = tracer.now()
            tracer.emit("batch.respond", "serving", t_respond, t_done,
                        args=batch_args)
            for request in batch:
                tracer.emit_async("request", "request", request.span_id,
                                  request.submit_ns, t_done)

    def _fail(self, request: _Request, exc: BaseException) -> None:
        if self._metrics is not None:
            self._metrics.record_completed(
                time.perf_counter() - request.submit_t, ok=False)
        tracer = self._tracer
        if tracer is not None and request.span_id:
            tracer.emit_async("request", "request", request.span_id,
                              request.submit_ns, tracer.now(),
                              args={"failed": "true"})
        request.future.set_exception(exc)
