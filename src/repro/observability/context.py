"""Trace-context propagation across execution boundaries.

PR 6's tracing instruments the in-process layers (plan steps, session
runs, serving lifecycles), but the paper's runtime is fundamentally
multi-worker: clusters execute on warm thread pools and forked process
replicas.  A :class:`TraceContext` is the small, picklable token the
coordinator attaches to dispatched work so spans recorded *inside* a
worker can be correlated back to the request that caused them:

* ``trace_id`` — one id per logical run/request, allocated from the
  coordinator tracer's async-id sequence so it never collides with the
  serving layer's request ids;
* ``parent_span`` — the name of the coordinator-side span the worker's
  spans logically nest under (e.g. ``"pool.run"``), carried as a span
  arg so the merged view stays navigable;
* ``dispatch_ns`` — the coordinator's trace clock at dispatch time.
  Together with the worker-side receive timestamp it bounds queue wait,
  and it gives :func:`repro.observability.merge.merge_traces` a sanity
  anchor when aligning per-worker clocks.

A context is immutable and contains only ints and strings, so it crosses
``multiprocessing`` queues at negligible cost; *absence* of a context
(``None``) is the untraced fast path and costs one ``is None`` check in
the worker loop.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Optional

__all__ = ["TraceContext"]


@dataclasses.dataclass(frozen=True)
class TraceContext:
    """One dispatched unit of work's link back to the coordinator trace."""

    #: id of the logical run/request this work belongs to
    trace_id: int
    #: coordinator-side span the worker's spans nest under (by time)
    parent_span: str = ""
    #: coordinator trace clock (``perf_counter_ns``) at dispatch
    dispatch_ns: int = 0

    @classmethod
    def from_tracer(cls, tracer, parent_span: str = "") -> "TraceContext":
        """A fresh context using ``tracer``'s id sequence and clock.

        ``tracer`` may be ``None`` (returns ``None``) so dispatch sites can
        write ``TraceContext.from_tracer(self._tracer, ...)`` without a
        branch of their own.
        """
        if tracer is None:
            return None
        return cls(trace_id=tracer.next_async_id(), parent_span=parent_span,
                   dispatch_ns=tracer.now())

    def span_args(self, extra: Optional[Dict[str, str]] = None) -> Dict[str, str]:
        """The args dict worker spans carry so merged traces correlate."""
        args = {"trace_id": str(self.trace_id)}
        if self.parent_span:
            args["parent"] = self.parent_span
        if extra:
            args.update(extra)
        return args

    def queue_wait_ns(self, received_ns: Optional[int] = None) -> int:
        """Nanoseconds between dispatch and ``received_ns`` (same machine).

        ``perf_counter_ns`` is machine-wide monotonic on the platforms the
        fork backend supports, so this is meaningful across forked workers
        too; clamped at zero in case a sub-tick race inverts the pair.
        """
        if received_ns is None:
            received_ns = time.perf_counter_ns()
        return max(received_ns - self.dispatch_ns, 0)
