"""Merging per-worker span buffers into one multi-process Chrome trace.

The warm worker pools and the process backend execute clusters on threads
and forked processes the coordinator's :class:`~repro.observability.Tracer`
cannot see into: a worker records spans on its *own* thread/process-local
tracer and ships the completed buffer back over the existing result
channels as a :class:`WorkerTraceBuffer` — plain tuples plus the worker's
real pid/tid, its drop count and its clock offset.  :func:`merge_traces`
aligns every buffer onto the coordinator's trace clock and emits a single
Chrome trace-event JSON object in which each worker renders as its own
pid/tid lane in Perfetto, with the coordinator's request/dispatch spans
above them.

Clock alignment: worker timestamps are ``perf_counter_ns`` readings taken
in the worker.  ``clock_offset_ns`` is ``worker_clock - coordinator_clock``
as measured by the pool's startup handshake (the coordinator sends its
clock, the worker replies with its own, and the offset is taken against
the midpoint of the round trip).  On the fork platforms the pools support,
``perf_counter`` is machine-wide monotonic so the measured offset is the
handshake's noise floor — but the handshake keeps the merge correct on any
platform where worker clocks genuinely diverge, and doubles as a liveness
check at pool startup.

Drop accounting is per worker: a buffer whose source ring wrapped (or that
the pool truncated while accumulating) carries its own ``dropped`` count,
and the merged payload's ``metadata`` lists every worker's drops next to
the coordinator tracer's, so a truncated lane is visible instead of
silently sparse.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["WorkerTraceBuffer", "merge_traces", "write_merged_trace"]

#: shipped span tuple layout: (name, cat, start_ns, dur_ns, args-or-None)
SpanTuple = Tuple[str, str, int, int, Optional[dict]]


@dataclasses.dataclass
class WorkerTraceBuffer:
    """One worker's completed spans, as shipped back to the coordinator."""

    #: human-readable lane name, e.g. ``"cluster-0"``
    worker: str
    #: the worker's real os pid (differs from the coordinator's for the
    #: process backend; equal for thread workers)
    pid: int
    #: the worker's thread ident inside its process
    tid: int
    #: span tuples ``(name, cat, start_ns, dur_ns, args)`` in the worker's
    #: own ``perf_counter_ns`` clock
    events: List[SpanTuple] = dataclasses.field(default_factory=list)
    #: spans lost in the worker's ring or to the pool's accumulation cap
    dropped: int = 0
    #: ``worker_clock - coordinator_clock`` from the startup handshake
    clock_offset_ns: int = 0

    def extend(self, events: Sequence[SpanTuple], dropped: int = 0) -> None:
        """Append shipped spans (and any drops) to this buffer."""
        self.events.extend(events)
        self.dropped += int(dropped)


def merge_traces(tracer, buffers: Sequence[WorkerTraceBuffer],
                 process_name: str = "repro") -> Dict:
    """One Chrome trace from a coordinator tracer plus worker buffers.

    Parameters
    ----------
    tracer:
        The coordinator's :class:`~repro.observability.Tracer` (may be
        ``None`` when only worker lanes are wanted).  Its epoch defines
        ``ts == 0`` of the merged trace.
    buffers:
        Per-worker buffers; worker timestamps are shifted by their
        ``clock_offset_ns`` onto the coordinator clock before the epoch is
        subtracted.

    Returns the Chrome trace-event JSON object (``traceEvents`` +
    ``metadata``), loadable directly in Perfetto: coordinator spans on the
    coordinator's pid, each worker on its own pid/tid lane named after the
    worker, request spans nesting over worker execute spans by time.
    """
    if tracer is not None:
        payload = tracer.chrome_trace(process_name=process_name)
        epoch = tracer.epoch_ns
    else:
        payload = {"traceEvents": [], "displayTimeUnit": "ms",
                   "metadata": {"recorded": 0, "dropped": 0}}
        epoch = min((_earliest_ns(b) for b in buffers if b.events),
                    default=0)
    trace_events: List[Dict] = payload["traceEvents"]
    metadata: Dict = payload.setdefault("metadata", {})
    metadata["coordinator_dropped"] = metadata.pop("dropped", 0)
    metadata["coordinator_recorded"] = metadata.pop("recorded", 0)
    worker_drops: Dict[str, int] = {}
    clock_offsets: Dict[str, int] = {}

    import os
    coordinator_pid = os.getpid()
    named_pids = {coordinator_pid}
    for buffer in buffers:
        if buffer.pid not in named_pids:
            trace_events.append({
                "name": "process_name", "ph": "M", "pid": buffer.pid,
                "tid": 0, "args": {
                    "name": f"{process_name} worker {buffer.worker} "
                            f"(pid {buffer.pid})"}})
            named_pids.add(buffer.pid)
        trace_events.append({
            "name": "thread_name", "ph": "M", "pid": buffer.pid,
            "tid": buffer.tid, "args": {"name": buffer.worker}})
        for name, cat, start_ns, dur_ns, args in buffer.events:
            record = {
                "name": name, "cat": cat or "default", "ph": "X",
                "ts": (start_ns - buffer.clock_offset_ns - epoch) / 1e3,
                "dur": dur_ns / 1e3,
                "pid": buffer.pid, "tid": buffer.tid,
            }
            if args:
                record["args"] = dict(args)
            trace_events.append(record)
        worker_drops[buffer.worker] = (
            worker_drops.get(buffer.worker, 0) + buffer.dropped)
        clock_offsets[buffer.worker] = buffer.clock_offset_ns
    metadata["worker_drops"] = worker_drops
    metadata["worker_clock_offsets_ns"] = clock_offsets
    metadata["workers"] = len(worker_drops)
    return payload


def write_merged_trace(path, tracer, buffers: Sequence[WorkerTraceBuffer],
                       process_name: str = "repro") -> Dict:
    """Serialize :func:`merge_traces` to ``path``; returns the payload."""
    payload = merge_traces(tracer, buffers, process_name=process_name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    return payload


def _earliest_ns(buffer: WorkerTraceBuffer) -> int:
    return min(start_ns - buffer.clock_offset_ns
               for _, _, start_ns, _, _ in buffer.events)
