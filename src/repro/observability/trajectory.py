"""Perf-trajectory analysis: close the loop on ``BENCH_exec.json``.

The CI perf-smoke job has emitted a ``BENCH_exec.json`` artifact per run
since PR 4 — paired-ratio speedups for the planned engine, the heavy
destination-passing kernels and the IOBinding hot path — but the artifact
was write-only: nothing compared one run against the runs before it, so a
perf regression only surfaced if a human opened the artifact.  This module
is the read side:

* :func:`load_trajectory` parses a series of ``BENCH_exec.json`` files
  (paths, directories, or globs already expanded by the shell) and orders
  them by their embedded ``created_unix`` stamp;
* :func:`analyze_trajectory` extracts the machine-independent **ratio**
  metrics from every entry (paired speedups — wall-clock milliseconds are
  deliberately ignored because trajectory entries come from different CI
  machines), computes each benchmark's delta against a rolling baseline
  (mean of the preceding ``window`` entries), and flags any metric whose
  latest value fell more than ``threshold`` below its baseline;
* :func:`render_trend_table` renders the per-benchmark trend table the
  ``ramiel bench-report`` CLI prints, and the CLI exits non-zero on any
  regression — turning the artifact upload into a gate.

The analyzer is schema-tolerant: it reads the ``repro-exec-bench/*``
family, skips entries without a parsable payload (counted in the report)
and copes with benchmarks appearing or disappearing across entries.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "TrajectoryReport",
    "TrendRow",
    "analyze_trajectory",
    "load_trajectory",
    "render_trend_table",
]

#: per-model ratio metrics worth trending (higher is better for all)
MODEL_RATIO_METRICS: Tuple[str, ...] = (
    "speedup", "heavy_speedup", "binding_speedup",
)


def load_trajectory(paths: Sequence[str]) -> List[Dict]:
    """Parse ``BENCH_exec.json`` files into a time-ordered entry list.

    ``paths`` may mix files and directories; a directory contributes every
    ``*.json`` file directly inside it (the shape of a downloaded
    artifact-history folder).  Entries are ordered by their embedded
    ``created_unix`` stamp — filesystem order is meaningless for artifacts
    re-downloaded from CI — with the file path attached as ``_path``.
    Unreadable or non-bench files are skipped and recorded under
    ``_skipped`` on the returned list's entries' sibling (see
    :func:`analyze_trajectory`, which re-derives skips from ``None``
    placeholders).
    """
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            files.extend(sorted(
                os.path.join(path, name) for name in os.listdir(path)
                if name.endswith(".json")))
        else:
            files.append(path)
    entries: List[Dict] = []
    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            continue
        if not isinstance(payload, dict) or "models" not in payload:
            continue
        payload = dict(payload)
        payload["_path"] = path
        entries.append(payload)
    entries.sort(key=lambda e: e.get("created_unix", 0))
    return entries


def _extract_metrics(entry: Dict) -> Dict[str, float]:
    """Flatten one bench entry into ``benchmark/metric -> ratio`` pairs."""
    metrics: Dict[str, float] = {}
    for row in entry.get("models", []):
        model = row.get("model")
        if not model:
            continue
        for name in MODEL_RATIO_METRICS:
            value = row.get(name)
            if isinstance(value, (int, float)):
                metrics[f"{model}/{name}"] = float(value)
    for row in entry.get("conv_op_pr3_comparison", []):
        case = row.get("case")
        value = row.get("speedup")
        if case and isinstance(value, (int, float)):
            metrics[f"conv:{case}/speedup"] = float(value)
    return metrics


@dataclasses.dataclass
class TrendRow:
    """One benchmark metric's latest value against its rolling baseline."""

    benchmark: str
    metric: str
    latest: float
    #: mean of the preceding ``window`` observations (None when the metric
    #: has no history yet — first appearance is never a regression)
    baseline: Optional[float]
    #: (latest - baseline) / baseline, in percent; None without baseline
    delta_pct: Optional[float]
    #: how many prior observations back the baseline
    samples: int
    regressed: bool

    @property
    def status(self) -> str:
        if self.baseline is None:
            return "new"
        if self.regressed:
            return "REGRESSED"
        return "ok"


@dataclasses.dataclass
class TrajectoryReport:
    """The analyzed trajectory: trend rows plus the regression verdict."""

    rows: List[TrendRow]
    entries: int
    threshold: float
    window: int

    @property
    def regressions(self) -> List[TrendRow]:
        """The rows whose latest value fell past the threshold."""
        return [row for row in self.rows if row.regressed]

    @property
    def ok(self) -> bool:
        """True when no metric regressed past the threshold."""
        return not self.regressions

    def as_dict(self) -> Dict:
        """The report as plain JSON-serializable data (``--json`` output)."""
        return {
            "entries": self.entries,
            "threshold": self.threshold,
            "window": self.window,
            "ok": self.ok,
            "rows": [dataclasses.asdict(row) | {"status": row.status}
                     for row in self.rows],
        }


def analyze_trajectory(entries: Sequence[Dict], threshold: float = 0.10,
                       window: int = 3) -> TrajectoryReport:
    """Delta every benchmark's latest ratio against a rolling baseline.

    Parameters
    ----------
    entries:
        Time-ordered bench payloads (from :func:`load_trajectory`).
    threshold:
        Relative drop that counts as a regression: the latest value must
        stay above ``baseline * (1 - threshold)``.
    window:
        Rolling-baseline width — the mean of up to ``window`` observations
        immediately preceding the latest entry.  A short window tracks
        gradual drift; the mean (rather than the single previous run)
        absorbs one noisy CI machine without masking a real drop.
    """
    if threshold < 0:
        raise ValueError("regression threshold must be >= 0")
    if window < 1:
        raise ValueError("baseline window must be >= 1")
    series: Dict[str, List[float]] = {}
    for entry in entries:
        for key, value in _extract_metrics(entry).items():
            series.setdefault(key, []).append(value)
    rows: List[TrendRow] = []
    for key in sorted(series):
        history = series[key]
        benchmark, _, metric = key.rpartition("/")
        latest = history[-1]
        prior = history[:-1][-window:]
        if prior:
            baseline = sum(prior) / len(prior)
            delta_pct = ((latest - baseline) / baseline * 100.0
                         if baseline else None)
            regressed = bool(baseline) and latest < baseline * (1.0 - threshold)
        else:
            baseline = delta_pct = None
            regressed = False
        rows.append(TrendRow(benchmark=benchmark, metric=metric,
                             latest=round(latest, 4),
                             baseline=(None if baseline is None
                                       else round(baseline, 4)),
                             delta_pct=(None if delta_pct is None
                                        else round(delta_pct, 2)),
                             samples=len(prior), regressed=regressed))
    return TrajectoryReport(rows=rows, entries=len(entries),
                            threshold=threshold, window=window)


def render_trend_table(report: TrajectoryReport) -> str:
    """The report as an aligned text table plus a one-line verdict."""
    from repro.analysis.reports import format_rows

    if not report.rows:
        return (f"no trend data: {report.entries} parsable entries, "
                "0 benchmark metrics")
    table_rows = [{
        "benchmark": row.benchmark,
        "metric": row.metric,
        "baseline": "-" if row.baseline is None else row.baseline,
        "latest": row.latest,
        "delta_pct": "-" if row.delta_pct is None else row.delta_pct,
        "window": row.samples,
        "status": row.status,
    } for row in report.rows]
    lines = [format_rows(table_rows)]
    regressions = report.regressions
    if regressions:
        worst = min(regressions,
                    key=lambda row: row.delta_pct if row.delta_pct is not None
                    else 0.0)
        lines.append("")
        lines.append(
            f"REGRESSION: {len(regressions)} metric(s) fell more than "
            f"{report.threshold * 100:.0f}% below their rolling baseline "
            f"(worst: {worst.benchmark}/{worst.metric} "
            f"{worst.delta_pct:+.1f}%)")
    else:
        lines.append("")
        lines.append(
            f"ok: no metric fell more than {report.threshold * 100:.0f}% "
            f"below its rolling baseline across {report.entries} entries")
    return "\n".join(lines)
