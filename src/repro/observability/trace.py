"""Low-overhead span tracing with Chrome trace-event export.

The paper's Ramiel runtime is steered by a *profile database* holding
"information about the execution trace"; this module is the execution-trace
half of the repo's observability layer (:mod:`repro.observability.metrics`
is the counters half).  A :class:`Tracer` records **spans** — named,
categorized time intervals measured with :func:`time.perf_counter_ns` —
into a fixed-capacity, thread-safe ring buffer, and exports them in the
Chrome trace-event JSON format, loadable directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``, the same format the
torch profiler emits.

Design constraints, in order:

1. **Zero cost when absent.**  Nothing in the hot layers holds a tracer by
   default; instrumented code paths check ``tracer is None`` once per
   *run*, not per step (:class:`repro.runtime.plan.ExecutionPlan` compiles
   the traced stepper as a separate closure at enable time).
2. **Bounded memory.**  The ring buffer overwrites the oldest events once
   full and counts the overwritten ones (``stats()["dropped"]``), so a
   long-running server can keep a tracer attached as a flight recorder.
3. **Thread-safe recording.**  Spans are recorded under a lock from any
   thread; the emitting thread's id and name are captured per event so the
   exported trace shows one track per thread.

Three recording APIs, least to most convenient:

* ``emit(name, cat, start_ns, end_ns)`` — explicit timestamps taken via
  :meth:`Tracer.now`; what compiled hot loops use.
* ``begin(name, cat)`` / ``end()`` — an explicit per-thread span stack.
* ``span(name, cat)`` — a context manager over begin/end.

Request-shaped lifecycles that cross threads (submit on a caller thread,
execute on a batcher thread) use **async spans** (``emit_async`` /
``async_span``): Chrome renders them on their own track, nested by
``(category, id)``, so cross-thread phases do not have to nest inside any
single thread's span stack.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, Iterable, List, Mapping, Optional

__all__ = ["TraceEvent", "Tracer"]

#: event kinds (``TraceEvent.kind``): a thread-track complete span, or an
#: async begin/end pair rendered on a per-(cat, id) track
SPAN = "span"
ASYNC = "async"


class TraceEvent:
    """One recorded span: name, category, interval and emitting thread."""

    __slots__ = ("name", "cat", "start_ns", "dur_ns", "tid", "args",
                 "kind", "id")

    def __init__(self, name: str, cat: str, start_ns: int, dur_ns: int,
                 tid: int, args: Optional[Mapping] = None,
                 kind: str = SPAN, id: Optional[int] = None) -> None:
        self.name = name
        self.cat = cat
        self.start_ns = start_ns
        self.dur_ns = dur_ns
        self.tid = tid
        self.args = args
        self.kind = kind
        self.id = id

    @property
    def end_ns(self) -> int:
        """End timestamp (``start_ns + dur_ns``)."""
        return self.start_ns + self.dur_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceEvent({self.name!r}, cat={self.cat!r}, "
                f"start_ns={self.start_ns}, dur_ns={self.dur_ns})")


class _SpanContext:
    """Reusable-per-call context manager backing :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_start_ns")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: Optional[Mapping]) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self) -> "_SpanContext":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info) -> None:
        self._tracer.emit(self._name, self._cat, self._start_ns,
                          time.perf_counter_ns(), args=self._args)


class _AsyncSpanContext:
    """Context manager emitting an async (cross-thread) span on exit."""

    __slots__ = ("_tracer", "_name", "_cat", "_id", "_args", "_start_ns")

    def __init__(self, tracer: "Tracer", name: str, cat: str, id: int,
                 args: Optional[Mapping]) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._id = id
        self._args = args

    def __enter__(self) -> "_AsyncSpanContext":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info) -> None:
        self._tracer.emit_async(self._name, self._cat, self._id,
                                self._start_ns, time.perf_counter_ns(),
                                args=self._args)


class Tracer:
    """Thread-safe ring buffer of spans with Chrome trace-event export.

    Parameters
    ----------
    capacity:
        Maximum number of buffered events; the oldest are overwritten (and
        counted as dropped) once full.
    enabled:
        Initial recording state; :meth:`enable` / :meth:`disable` toggle it
        at runtime (a disabled tracer records nothing but keeps its
        buffer).
    """

    def __init__(self, capacity: int = 65536, enabled: bool = True) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = int(capacity)
        self._enabled = bool(enabled)
        self._lock = threading.Lock()
        self._ring: List[Optional[TraceEvent]] = [None] * self.capacity
        self._head = 0            # next write position
        self._recorded = 0        # total events ever recorded
        self._dropped = 0         # events overwritten by ring wraparound
        self._epoch_ns = time.perf_counter_ns()
        self._thread_names: Dict[int, str] = {}
        self._stacks = threading.local()
        self._async_ids = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @staticmethod
    def now() -> int:
        """The trace clock: :func:`time.perf_counter_ns`."""
        return time.perf_counter_ns()

    @property
    def enabled(self) -> bool:
        """Whether :meth:`emit` currently records."""
        return self._enabled

    def enable(self) -> None:
        """Resume recording."""
        self._enabled = True

    def disable(self) -> None:
        """Stop recording (buffered events are kept)."""
        self._enabled = False

    def emit(self, name: str, cat: str, start_ns: int, end_ns: int,
             args: Optional[Mapping] = None) -> None:
        """Record one complete span with explicit timestamps."""
        if not self._enabled:
            return
        tid = threading.get_ident()
        event = TraceEvent(name, cat, start_ns, end_ns - start_ns, tid, args)
        with self._lock:
            if tid not in self._thread_names:
                self._thread_names[tid] = threading.current_thread().name
            if self._ring[self._head] is not None:
                self._dropped += 1
            self._ring[self._head] = event
            self._head = (self._head + 1) % self.capacity
            self._recorded += 1

    def emit_async(self, name: str, cat: str, id: int,
                   start_ns: int, end_ns: int,
                   args: Optional[Mapping] = None) -> None:
        """Record one async span (rendered on a per-``(cat, id)`` track).

        Use for lifecycles that cross threads — e.g. a serving request
        that is submitted on a caller thread and executed on a batcher
        thread — where thread-track spans could not nest well-formedly.
        """
        if not self._enabled:
            return
        tid = threading.get_ident()
        event = TraceEvent(name, cat, start_ns, end_ns - start_ns, tid,
                           args, kind=ASYNC, id=int(id))
        with self._lock:
            if tid not in self._thread_names:
                self._thread_names[tid] = threading.current_thread().name
            if self._ring[self._head] is not None:
                self._dropped += 1
            self._ring[self._head] = event
            self._head = (self._head + 1) % self.capacity
            self._recorded += 1

    def next_async_id(self) -> int:
        """A fresh id for one async lifecycle (monotonic, thread-safe)."""
        with self._lock:
            self._async_ids += 1
            return self._async_ids

    # -- span stack ----------------------------------------------------
    def span(self, name: str, cat: str = "",
             args: Optional[Mapping] = None) -> _SpanContext:
        """Context manager recording a span around its body."""
        return _SpanContext(self, name, cat, args)

    def async_span(self, name: str, cat: str, id: int,
                   args: Optional[Mapping] = None) -> _AsyncSpanContext:
        """Context manager recording an async span around its body."""
        return _AsyncSpanContext(self, name, cat, id, args)

    def begin(self, name: str, cat: str = "",
              args: Optional[Mapping] = None) -> None:
        """Open a span on this thread's stack (explicit begin/end API)."""
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = self._stacks.stack = []
        stack.append((name, cat, args, time.perf_counter_ns()))

    def end(self) -> None:
        """Close the innermost :meth:`begin` span on this thread."""
        stack = getattr(self._stacks, "stack", None)
        if not stack:
            raise RuntimeError("Tracer.end() without a matching begin() "
                               "on this thread")
        name, cat, args, start_ns = stack.pop()
        self.emit(name, cat, start_ns, time.perf_counter_ns(), args=args)

    # ------------------------------------------------------------------
    # Inspection / export
    # ------------------------------------------------------------------
    def export(self) -> Dict:
        """One consistent snapshot of the buffer and its counters.

        Everything is read under a single lock acquisition, so the
        invariant ``recorded == buffered + dropped`` holds in the returned
        snapshot even while other threads keep emitting — an export can
        never observe a span that is counted neither as buffered nor as
        dropped.  (Reading ``events()`` and ``stats()`` separately cannot
        make that promise: a wraparound between the two calls moves a span
        from the buffer into the drop count unseen.)  This is what the
        trace mergers and the registry collector read.
        """
        with self._lock:
            ordered = self._ring[self._head:] + self._ring[:self._head]
            events = [event for event in ordered if event is not None]
            return {
                "events": events,
                "thread_names": dict(self._thread_names),
                "recorded": self._recorded,
                "buffered": len(events),
                "dropped": self._dropped,
                "capacity": self.capacity,
                "enabled": self._enabled,
                "epoch_ns": self._epoch_ns,
            }

    @property
    def epoch_ns(self) -> int:
        """The trace-clock origin: ``ts`` fields are relative to this."""
        return self._epoch_ns

    def events(self) -> List[TraceEvent]:
        """Buffered events, oldest first."""
        with self._lock:
            ordered = self._ring[self._head:] + self._ring[:self._head]
        return [event for event in ordered if event is not None]

    def clear(self) -> None:
        """Drop every buffered event and reset the drop counter."""
        with self._lock:
            self._ring = [None] * self.capacity
            self._head = 0
            self._dropped = 0
            self._recorded = 0
            self._epoch_ns = time.perf_counter_ns()

    def stats(self) -> Dict[str, int]:
        """Recording counters: recorded / buffered / dropped / capacity."""
        snapshot = self.export()
        return {key: snapshot[key] for key in
                ("recorded", "buffered", "dropped", "capacity", "enabled")}

    def publish_metrics(self, registry,
                        labels: Optional[Mapping[str, str]] = None) -> None:
        """Expose the recording counters via a ``MetricsRegistry``.

        Registers a pull-style collector refreshing ``tracer_spans_recorded``
        / ``tracer_spans_dropped`` / ``tracer_spans_buffered`` gauges before
        every snapshot, so drop accounting is visible in the same Prometheus
        exposition as the serving and worker metrics instead of requiring a
        ``tracer.stats()`` call by hand.
        """
        labels = dict(labels) if labels else None
        gauge = registry.gauge

        def collect(_registry) -> None:
            snapshot = self.export()
            gauge("tracer_spans_recorded", "Spans ever recorded",
                  labels=labels).set(snapshot["recorded"])
            gauge("tracer_spans_dropped",
                  "Spans overwritten by ring wraparound",
                  labels=labels).set(snapshot["dropped"])
            gauge("tracer_spans_buffered", "Spans currently buffered",
                  labels=labels).set(snapshot["buffered"])

        registry.register_collector(collect)

    def chrome_trace(self, process_name: str = "repro") -> Dict:
        """The buffered spans as a Chrome trace-event JSON object.

        Thread-track spans become ``"ph": "X"`` complete events (``ts`` /
        ``dur`` in microseconds, relative to the tracer's epoch); async
        spans become ``"b"`` / ``"e"`` pairs keyed by ``(cat, id)``;
        process and thread names are attached as ``"M"`` metadata events.
        The result loads directly in Perfetto / ``chrome://tracing``.
        """
        pid = os.getpid()
        # One atomic snapshot: events, thread names and drop counters are
        # taken under a single lock acquisition, so an emit racing this
        # export cannot make the trace claim fewer drops than it had when
        # its newest span was buffered.
        snapshot = self.export()
        epoch = snapshot["epoch_ns"]
        trace_events: List[Dict] = [{
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": process_name},
        }]
        for tid, tname in sorted(snapshot["thread_names"].items()):
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": tname},
            })
        for event in snapshot["events"]:
            ts_us = (event.start_ns - epoch) / 1e3
            dur_us = event.dur_ns / 1e3
            if event.kind == ASYNC:
                common = {"name": event.name, "cat": event.cat or "default",
                          "pid": pid, "tid": event.tid,
                          "id": event.id}
                begin = dict(common, ph="b", ts=ts_us)
                if event.args:
                    begin["args"] = dict(event.args)
                trace_events.append(begin)
                trace_events.append(dict(common, ph="e", ts=ts_us + dur_us))
            else:
                record = {
                    "name": event.name, "cat": event.cat or "default",
                    "ph": "X", "ts": ts_us, "dur": dur_us,
                    "pid": pid, "tid": event.tid,
                }
                if event.args:
                    record["args"] = dict(event.args)
                trace_events.append(record)
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            # Perfetto ignores unknown top-level keys; drop accounting rides
            # along so a truncated flight-recorder trace is self-describing.
            "metadata": {
                "recorded": snapshot["recorded"],
                "dropped": snapshot["dropped"],
            },
        }

    def write_chrome_trace(self, path, process_name: str = "repro") -> None:
        """Serialize :meth:`chrome_trace` to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.chrome_trace(process_name=process_name), fh)
