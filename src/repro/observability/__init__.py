"""repro.observability — unified tracing and metrics across the stack.

The paper's Ramiel runtime is steered by a profile database holding
"information about the execution trace and the slacks during
communication"; this subsystem is the repo's production-shaped version of
it, one layer with two halves:

* :mod:`repro.observability.trace` — :class:`Tracer`, a low-overhead span
  recorder (``perf_counter_ns`` intervals in a thread-safe ring buffer)
  with Chrome trace-event JSON export, loadable in Perfetto.  The hot
  layers thread spans through it: ``ExecutionPlan`` per-step spans
  (compiled in at enable time; the untraced path is untouched),
  ``Session.run`` / ``run_with_binding`` run-level spans, and the serving
  engine's request lifecycle (submit, queue wait, batch assembly, execute,
  respond).
* :mod:`repro.observability.metrics` — :class:`MetricsRegistry`, one
  registry of counters, gauges and fixed-bucket histograms (bounded
  memory, bucket-interpolated percentiles) with Prometheus text
  exposition.  ``ServingMetrics`` mirrors into it, and sessions/engines
  publish arena, output-binding and worker-pool stats via pull-style
  collectors — one snapshot where four disjoint ``stats()`` surfaces used
  to be.

Three further modules extend the layer across execution boundaries
(lazily exported — see ``__getattr__`` below):

* :mod:`repro.observability.context` — :class:`TraceContext`, the small
  picklable token worker pools attach to dispatched work so per-worker
  spans correlate back to the request that caused them;
* :mod:`repro.observability.merge` — :class:`WorkerTraceBuffer` and
  :func:`merge_traces`, which align per-worker clocks and merge shipped
  span buffers into one multi-process Chrome trace with per-worker drop
  accounting;
* :mod:`repro.observability.trajectory` — :func:`load_trajectory` /
  :func:`analyze_trajectory`, the read side of the CI ``BENCH_exec.json``
  artifact: rolling-baseline deltas per benchmark, rendered and gated by
  ``ramiel bench-report``.

Entry points: ``repro trace <model>`` (CLI) writes a ``trace.json`` +
metrics report (``--executor pool|process`` emits the merged multi-worker
view); ``ramiel bench-report`` gates a perf trajectory;
``InferenceEngine(..., tracer=...)`` and ``Session.set_tracer`` attach
tracers to live systems.
"""

from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.trace import TraceEvent, Tracer

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceContext",
    "TraceEvent",
    "Tracer",
    "WorkerTraceBuffer",
    "analyze_trajectory",
    "load_trajectory",
    "merge_traces",
    "write_merged_trace",
]

#: lazily-exported name -> defining submodule (the PR 6 export pattern:
#: ``import repro.observability`` must not pay for modules a user never
#: touches — gated by the import-cost check in tests/test_observability.py)
_LAZY_EXPORTS = {
    "TraceContext": "repro.observability.context",
    "WorkerTraceBuffer": "repro.observability.merge",
    "merge_traces": "repro.observability.merge",
    "write_merged_trace": "repro.observability.merge",
    "load_trajectory": "repro.observability.trajectory",
    "analyze_trajectory": "repro.observability.trajectory",
    "render_trend_table": "repro.observability.trajectory",
    "TrajectoryReport": "repro.observability.trajectory",
    "TrendRow": "repro.observability.trajectory",
}


def __getattr__(name):
    """Lazily expose the cross-boundary and trajectory modules."""
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module 'repro.observability' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
