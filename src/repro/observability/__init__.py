"""repro.observability — unified tracing and metrics across the stack.

The paper's Ramiel runtime is steered by a profile database holding
"information about the execution trace and the slacks during
communication"; this subsystem is the repo's production-shaped version of
it, one layer with two halves:

* :mod:`repro.observability.trace` — :class:`Tracer`, a low-overhead span
  recorder (``perf_counter_ns`` intervals in a thread-safe ring buffer)
  with Chrome trace-event JSON export, loadable in Perfetto.  The hot
  layers thread spans through it: ``ExecutionPlan`` per-step spans
  (compiled in at enable time; the untraced path is untouched),
  ``Session.run`` / ``run_with_binding`` run-level spans, and the serving
  engine's request lifecycle (submit, queue wait, batch assembly, execute,
  respond).
* :mod:`repro.observability.metrics` — :class:`MetricsRegistry`, one
  registry of counters, gauges and fixed-bucket histograms (bounded
  memory, bucket-interpolated percentiles) with Prometheus text
  exposition.  ``ServingMetrics`` mirrors into it, and sessions/engines
  publish arena, output-binding and worker-pool stats via pull-style
  collectors — one snapshot where four disjoint ``stats()`` surfaces used
  to be.

Entry points: ``repro trace <model>`` (CLI) writes a ``trace.json`` +
metrics report; ``InferenceEngine(..., tracer=...)`` and
``Session.set_tracer`` attach tracers to live systems.
"""

from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.trace import TraceEvent, Tracer

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceEvent",
    "Tracer",
]
