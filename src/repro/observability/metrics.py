"""One metrics registry across plan, session and serving.

Before this module, the repo's statistics lived on four disjoint surfaces
(``ServingMetrics.snapshot()``, ``GraphProfile``, ``Session.stats()`` and
``ExecutionPlan.stats()["arena"]``), each with its own shape.  A
:class:`MetricsRegistry` is the single sink they all report into:

* :class:`Counter` — a monotonically increasing total;
* :class:`Gauge` — a point-in-time value (set on write or refreshed by a
  registered *collector* right before every snapshot/exposition);
* :class:`Histogram` — fixed-bucket cumulative counts with running
  count/sum/min/max and bucket-interpolated percentile estimation — bounded
  memory regardless of how many observations arrive.

Instruments are identified by ``(name, labels)``; ``registry.counter(...)``
et al. are get-or-create, so independent subsystems can mirror into the
same registry without coordination.  :meth:`MetricsRegistry.render_prometheus`
produces the Prometheus text exposition format (version 0.0.4);
:meth:`MetricsRegistry.snapshot` the same data as plain dicts.

Everything is stdlib-only and safe to import from anywhere in the package.
"""

from __future__ import annotations

import bisect
import math
import re
import threading
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: default histogram buckets, sized for request/step latencies in seconds
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

_LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Optional[Mapping[str, str]]) -> _LabelsKey:
    if not labels:
        return ()
    items = []
    for key in sorted(labels):
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
        items.append((key, str(labels[key])))
    return tuple(items)


def _format_labels(labels: _LabelsKey, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(labels)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    escaped = ",".join(
        '%s="%s"' % (key, value.replace("\\", "\\\\").replace('"', '\\"'))
        for key, value in pairs)
    return "{%s}" % escaped


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "help", "labels", "_value", "_lock")

    metric_type = "counter"

    def __init__(self, name: str, help: str = "",
                 labels: _LabelsKey = ()) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current total."""
        return self._value

    def reset(self) -> None:
        """Zero the total.

        Prometheus counters never go down in production; this exists for
        benchmark windows (``serve-bench`` resets metrics after warmup so
        the report covers only the measured load).
        """
        with self._lock:
            self._value = 0.0


class Gauge:
    """A point-in-time value that can go up and down."""

    __slots__ = ("name", "help", "labels", "_value", "_lock")

    metric_type = "gauge"

    def __init__(self, name: str, help: str = "",
                 labels: _LabelsKey = ()) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self._value: Optional[float] = None
        self._lock = threading.Lock()

    def set(self, value: Optional[float]) -> None:
        """Set the current value (None means "not observed yet")."""
        self._value = None if value is None else float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the current value (0 if unset)."""
        with self._lock:
            self._value = (self._value or 0.0) + amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the current value (0 if unset)."""
        self.inc(-amount)

    @property
    def value(self) -> Optional[float]:
        """The current value (None when never set)."""
        return self._value

    def reset(self) -> None:
        """Return to the never-set state."""
        self._value = None


class Histogram:
    """Fixed-bucket histogram with percentile estimation.

    Observations increment cumulative bucket counters (one per upper bound
    plus ``+Inf``) and running count/sum/min/max — memory stays constant no
    matter how many samples arrive, which is what lets long ``serve-bench``
    runs keep recording forever.  :meth:`percentile` estimates quantiles by
    linear interpolation inside the containing bucket, the same scheme as
    Prometheus' ``histogram_quantile``.
    """

    __slots__ = ("name", "help", "labels", "bounds", "_bucket_counts",
                 "_count", "_sum", "_min", "_max", "_lock")

    metric_type = "histogram"

    def __init__(self, name: str, help: str = "", labels: _LabelsKey = (),
                 buckets: Optional[Sequence[float]] = None) -> None:
        bounds = tuple(sorted(set(buckets or DEFAULT_LATENCY_BUCKETS)))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(math.isinf(b) for b in bounds):
            bounds = tuple(b for b in bounds if not math.isinf(b))
        self.name = name
        self.help = help
        self.labels = labels
        self.bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # + the +Inf bucket
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._bucket_counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    def reset(self) -> None:
        """Zero every bucket and the running count/sum/min/max."""
        with self._lock:
            self._bucket_counts = [0] * (len(self.bounds) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = None
            self._max = None

    # -- derived -------------------------------------------------------
    @property
    def count(self) -> int:
        """Total number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    @property
    def mean(self) -> Optional[float]:
        """Mean observed value (None when empty)."""
        return (self._sum / self._count) if self._count else None

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last."""
        with self._lock:
            counts = list(self._bucket_counts)
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            out.append((bound, running))
        out.append((math.inf, running + counts[-1]))
        return out

    def percentile(self, q: float) -> Optional[float]:
        """Estimated ``q``-th percentile (0-100) via bucket interpolation.

        Exact sample values are not retained, so the estimate carries
        bucket-width error; the running min/max clamp the first and last
        buckets so estimates never leave the observed range.
        """
        if not 0 <= q <= 100:
            raise ValueError("percentile q must be in [0, 100]")
        if self._count == 0:
            return None
        rank = (q / 100.0) * self._count
        cumulative = self.cumulative_buckets()
        previous_bound = self._min if self._min is not None else 0.0
        previous_count = 0
        for bound, running in cumulative:
            if running >= rank and running > 0:
                upper = bound
                if math.isinf(upper):
                    return self._max
                upper = min(upper, self._max if self._max is not None else upper)
                lower = max(previous_bound,
                            self._min if self._min is not None else previous_bound)
                if running == previous_count:
                    return upper
                fraction = (rank - previous_count) / (running - previous_count)
                return lower + (upper - lower) * max(0.0, min(1.0, fraction))
            previous_bound = bound
            previous_count = running
        return self._max


_Instrument = object  # Counter | Gauge | Histogram


class MetricsRegistry:
    """Get-or-create registry of named instruments with text exposition.

    Collectors registered via :meth:`register_collector` run (in
    registration order) right before every :meth:`snapshot` /
    :meth:`render_prometheus`, refreshing gauges whose source of truth
    lives elsewhere (a plan's arena counters, a session's binding stats, a
    pool's cluster count) — pull-style mirroring without threading writes
    through the hot path.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, _LabelsKey], _Instrument] = {}
        self._types: Dict[str, str] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # ------------------------------------------------------------------
    # Instrument creation
    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str,
                       labels: Optional[Mapping[str, str]], **kwargs):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        key = (name, _labels_key(labels))
        with self._lock:
            existing_type = self._types.get(name)
            if existing_type is not None and existing_type != cls.metric_type:
                raise ValueError(
                    f"metric {name!r} is already registered as a "
                    f"{existing_type}, not a {cls.metric_type}")
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, help=help, labels=key[1], **kwargs)
                self._instruments[key] = instrument
                self._types[name] = cls.metric_type
            return instrument

    def counter(self, name: str, help: str = "",
                labels: Optional[Mapping[str, str]] = None) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Optional[Mapping[str, str]] = None) -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Optional[Mapping[str, str]] = None,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        """Get or create a :class:`Histogram` (fixed ``buckets`` bounds)."""
        return self._get_or_create(Histogram, name, help, labels,
                                   buckets=buckets)

    # ------------------------------------------------------------------
    # Collectors and lookup
    # ------------------------------------------------------------------
    def register_collector(
            self, collect: Callable[["MetricsRegistry"], None]) -> None:
        """Run ``collect(registry)`` before every snapshot/exposition.

        Collectors hold strong references to whatever they close over;
        deregister with :meth:`unregister_collector` when the source dies.
        """
        with self._lock:
            self._collectors.append(collect)

    def unregister_collector(self, collect) -> None:
        """Remove a previously registered collector (no-op if absent)."""
        with self._lock:
            try:
                self._collectors.remove(collect)
            except ValueError:
                pass

    def collect(self) -> None:
        """Run every registered collector once."""
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            collector(self)

    def get(self, name: str,
            labels: Optional[Mapping[str, str]] = None) -> Optional[_Instrument]:
        """The instrument registered under ``(name, labels)``, else None."""
        with self._lock:
            return self._instruments.get((name, _labels_key(labels)))

    def get_value(self, name: str,
                  labels: Optional[Mapping[str, str]] = None,
                  default=None):
        """Shortcut: the instrument's value (counter/gauge) or ``default``."""
        instrument = self.get(name, labels)
        if instrument is None:
            return default
        value = instrument.value if not isinstance(instrument, Histogram) \
            else instrument.count
        return default if value is None else value

    def series(self, name: str) -> List[Tuple[Dict[str, str], _Instrument]]:
        """Every labeled instrument registered under ``name``."""
        with self._lock:
            return [(dict(key[1]), instrument)
                    for key, instrument in self._instruments.items()
                    if key[0] == name]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        """All instruments as plain dicts, keyed by exposition-style name.

        Runs collectors first.  Counter/gauge entries carry ``value``;
        histograms carry count/sum/mean/min/max, the cumulative buckets
        and p50/p95/p99 estimates.
        """
        self.collect()
        out: Dict[str, Dict] = {}
        with self._lock:
            instruments = list(self._instruments.items())
        for (name, labels), instrument in instruments:
            key = name + _format_labels(labels)
            if isinstance(instrument, Histogram):
                out[key] = {
                    "type": "histogram",
                    "count": instrument.count,
                    "sum": instrument.sum,
                    "mean": instrument.mean,
                    "min": instrument._min,
                    "max": instrument._max,
                    "buckets": [[bound, count] for bound, count
                                in instrument.cumulative_buckets()],
                    "p50": instrument.percentile(50),
                    "p95": instrument.percentile(95),
                    "p99": instrument.percentile(99),
                }
            else:
                out[key] = {"type": instrument.metric_type,
                            "value": instrument.value}
        return out

    def render_prometheus(self) -> str:
        """The Prometheus text exposition (format 0.0.4) of every metric.

        Runs collectors first.  Unset gauges are omitted; histograms emit
        the standard ``_bucket{le=...}`` / ``_sum`` / ``_count`` series.
        """
        self.collect()
        with self._lock:
            instruments = list(self._instruments.items())
        families: Dict[str, List[Tuple[_LabelsKey, _Instrument]]] = {}
        for (name, labels), instrument in instruments:
            families.setdefault(name, []).append((labels, instrument))
        lines: List[str] = []
        for name in sorted(families):
            members = families[name]
            metric_type = self._types[name]
            help_text = next((m.help for _, m in members if m.help), "")
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {metric_type}")
            for labels, instrument in sorted(members, key=lambda kv: kv[0]):
                if isinstance(instrument, Histogram):
                    for bound, count in instrument.cumulative_buckets():
                        le = "+Inf" if math.isinf(bound) else repr(bound)
                        lines.append(
                            f"{name}_bucket"
                            f"{_format_labels(labels, ('le', le))} {count}")
                    lines.append(
                        f"{name}_sum{_format_labels(labels)} "
                        f"{instrument.sum}")
                    lines.append(
                        f"{name}_count{_format_labels(labels)} "
                        f"{instrument.count}")
                else:
                    value = instrument.value
                    if value is None:
                        continue
                    if isinstance(value, float) and value.is_integer():
                        value = int(value)
                    lines.append(
                        f"{name}{_format_labels(labels)} {value}")
        return "\n".join(lines) + "\n"
