"""repro — reproduction of "Automatic Task Parallelization of Dataflow Graphs in ML/DL Models".

The package implements **Ramiel**, the paper's end-to-end tool, together
with every substrate it depends on:

* :mod:`repro.ir` — an ONNX-like model IR (the input format),
* :mod:`repro.models` — builders for the paper's eight benchmark models,
* :mod:`repro.graph` — dataflow-graph conversion, cost model, critical path,
* :mod:`repro.passes` — constant propagation / dead-code elimination,
* :mod:`repro.clustering` — linear clustering, merging, cloning,
  hyperclustering and schedule simulation (the paper's core contribution),
* :mod:`repro.codegen` — readable parallel Python code generation,
* :mod:`repro.runtime` — a numpy operator runtime plus process/thread
  executors and warm per-cluster worker pools for the generated code,
* :mod:`repro.baselines` — the IOS dynamic-programming scheduler and other
  comparison points,
* :mod:`repro.pipeline` — the Ramiel pipeline tying it all together, plus
  content fingerprints of models/configs for artifact caching,
* :mod:`repro.serving` — a batched inference-serving engine on top of
  compiled schedules: compile-once artifact cache, dynamic micro-batching
  of concurrent requests, and serving metrics (throughput, latency
  percentiles, batch histogram, cache hit rate),
* :mod:`repro.observability` — a span tracer with Chrome trace-event
  export (Perfetto-loadable) and one metrics registry (counters, gauges,
  histograms, Prometheus text exposition) shared by plan, session and
  serving,
* :mod:`repro.resilience` — self-healing execution: pool worker
  supervision (dead/wedged detection, single-worker respawn),
  deterministic fault injection, retry policies, circuit breaking and
  degraded serving,
* :mod:`repro.gateway` — the asyncio HTTP front door over the serving
  engine (stdlib-only HTTP/1.1, bitwise-exact JSON tensor codec) plus
  an open-loop multi-tenant load harness; multi-tenant QoS itself
  (weighted fair admission, backpressure, deadlines, cache quotas)
  lives in :mod:`repro.serving.qos`.

Quickstart::

    from repro import ramiel_compile
    from repro.models import build_model

    model = build_model("squeezenet")
    result = ramiel_compile(model)
    print(result.summary())
"""

__version__ = "1.0.0"

from repro.ir import Model, Graph, GraphBuilder
from repro.graph import (
    DataflowGraph,
    model_to_dataflow,
    potential_parallelism,
    compute_metrics,
)

__all__ = [
    "__version__",
    "Model",
    "Graph",
    "GraphBuilder",
    "DataflowGraph",
    "model_to_dataflow",
    "potential_parallelism",
    "compute_metrics",
    "ramiel_compile",
    "RamielPipeline",
    "InferenceEngine",
    "EngineConfig",
    "QoSConfig",
    "TenantConfig",
    "GatewayServer",
    "GatewayThread",
    "GatewayConfig",
    "Session",
    "IOBinding",
    "create_session",
    "Tracer",
    "MetricsRegistry",
    "TraceContext",
    "merge_traces",
    "load_trajectory",
    "FaultInjector",
    "FaultSpec",
    "RetryPolicy",
    "CircuitBreaker",
    "PoolSupervisor",
    "ResilienceConfig",
    "ResilientDispatcher",
]


def __getattr__(name):
    """Lazily expose the heavier pipeline entry points.

    Importing :mod:`repro.pipeline` pulls in codegen and the runtime; doing
    it lazily keeps ``import repro`` cheap for users that only need the IR
    or the graph analyses.
    """
    if name in ("ramiel_compile", "RamielPipeline", "PipelineConfig"):
        from repro import pipeline as _pipeline

        return getattr(_pipeline, name)
    if name in ("InferenceEngine", "EngineConfig", "QoSConfig",
                "TenantConfig"):
        from repro import serving as _serving

        return getattr(_serving, name)
    if name in ("GatewayServer", "GatewayThread", "GatewayConfig"):
        from repro import gateway as _gateway

        return getattr(_gateway, name)
    if name in ("Session", "IOBinding", "create_session",
                "known_executors", "validate_executor"):
        from repro.runtime import session as _session

        return getattr(_session, name)
    if name in ("Tracer", "MetricsRegistry", "TraceContext",
                "merge_traces", "load_trajectory", "analyze_trajectory"):
        from repro import observability as _observability

        return getattr(_observability, name)
    if name in ("FaultInjector", "FaultSpec", "InjectedFault", "RetryPolicy",
                "CircuitBreaker", "BreakerOpen", "PoolSupervisor",
                "ResilienceConfig", "ResilientDispatcher"):
        from repro import resilience as _resilience

        return getattr(_resilience, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
