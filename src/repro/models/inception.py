"""Inception V3 and V4 dataflow graphs.

The paper's Fig. 2 highlights that several parallel Inception branches
(e.g. the pooling + 1x1 projection branch) have very low computational
intensity, motivating the task-cloning and hyperclustering optimizations.
Table I lists 238 nodes (V3) / 339 nodes (V4) with potential parallelism
1.37x / 1.32x.
"""

from __future__ import annotations

from repro.ir.builder import GraphBuilder
from repro.ir.model import Model


# ---------------------------------------------------------------------------
# Inception V3 blocks
# ---------------------------------------------------------------------------
def _inception_a(b: GraphBuilder, x: str, pool_features: int, ch: int = 64) -> str:
    """InceptionA: 1x1 / 5x5 / double-3x3 / pool branches."""
    branch1 = b.conv_relu(x, ch, kernel=1)

    branch5 = b.conv_relu(x, max(ch - 16, 4), kernel=1)
    branch5 = b.conv_relu(branch5, ch, kernel=5, pads=2)

    branch3 = b.conv_relu(x, ch, kernel=1)
    branch3 = b.conv_relu(branch3, ch + 32, kernel=3, pads=1)
    branch3 = b.conv_relu(branch3, ch + 32, kernel=3, pads=1)

    pool = b.avgpool(x, kernel=3, strides=1, pads=1)
    pool = b.conv_relu(pool, pool_features, kernel=1)

    return b.concat([branch1, branch5, branch3, pool], axis=1)


def _reduction_a(b: GraphBuilder, x: str, ch: int = 64) -> str:
    """Grid-size reduction block between the A and B stages."""
    branch3 = b.conv_relu(x, ch * 6, kernel=3, strides=2)

    branch3dbl = b.conv_relu(x, ch, kernel=1)
    branch3dbl = b.conv_relu(branch3dbl, ch + 32, kernel=3, pads=1)
    branch3dbl = b.conv_relu(branch3dbl, ch + 32, kernel=3, strides=2)

    pool = b.maxpool(x, kernel=3, strides=2)
    return b.concat([branch3, branch3dbl, pool], axis=1)


def _inception_b(b: GraphBuilder, x: str, ch7: int, out_ch: int = 192) -> str:
    """InceptionB/C-style block with factorized 7x7 convolutions."""
    branch1 = b.conv_relu(x, out_ch, kernel=1)

    branch7 = b.conv_relu(x, ch7, kernel=1)
    branch7 = b.conv_relu(branch7, ch7, kernel=(1, 7), pads=(0, 3))
    branch7 = b.conv_relu(branch7, out_ch, kernel=(7, 1), pads=(3, 0))

    branch7dbl = b.conv_relu(x, ch7, kernel=1)
    branch7dbl = b.conv_relu(branch7dbl, ch7, kernel=(7, 1), pads=(3, 0))
    branch7dbl = b.conv_relu(branch7dbl, ch7, kernel=(1, 7), pads=(0, 3))
    branch7dbl = b.conv_relu(branch7dbl, ch7, kernel=(7, 1), pads=(3, 0))
    branch7dbl = b.conv_relu(branch7dbl, out_ch, kernel=(1, 7), pads=(0, 3))

    pool = b.avgpool(x, kernel=3, strides=1, pads=1)
    pool = b.conv_relu(pool, out_ch, kernel=1)

    return b.concat([branch1, branch7, branch7dbl, pool], axis=1)


def _reduction_b(b: GraphBuilder, x: str, ch: int = 192) -> str:
    """Grid-size reduction block between the B and C stages."""
    branch3 = b.conv_relu(x, ch, kernel=1)
    branch3 = b.conv_relu(branch3, ch + 128, kernel=3, strides=2)

    branch7 = b.conv_relu(x, ch, kernel=1)
    branch7 = b.conv_relu(branch7, ch, kernel=(1, 7), pads=(0, 3))
    branch7 = b.conv_relu(branch7, ch, kernel=(7, 1), pads=(3, 0))
    branch7 = b.conv_relu(branch7, ch, kernel=3, strides=2)

    pool = b.maxpool(x, kernel=3, strides=2)
    return b.concat([branch3, branch7, pool], axis=1)


def _inception_e(b: GraphBuilder, x: str, ch: int = 320) -> str:
    """InceptionE: branches that themselves fork into 1x3/3x1 pairs."""
    branch1 = b.conv_relu(x, ch, kernel=1)

    branch3 = b.conv_relu(x, ch + 64, kernel=1)
    branch3a = b.conv_relu(branch3, ch + 64, kernel=(1, 3), pads=(0, 1))
    branch3b = b.conv_relu(branch3, ch + 64, kernel=(3, 1), pads=(1, 0))
    branch3 = b.concat([branch3a, branch3b], axis=1)

    branch3dbl = b.conv_relu(x, ch + 128, kernel=1)
    branch3dbl = b.conv_relu(branch3dbl, ch + 64, kernel=3, pads=1)
    branch3dbl_a = b.conv_relu(branch3dbl, ch + 64, kernel=(1, 3), pads=(0, 1))
    branch3dbl_b = b.conv_relu(branch3dbl, ch + 64, kernel=(3, 1), pads=(1, 0))
    branch3dbl = b.concat([branch3dbl_a, branch3dbl_b], axis=1)

    pool = b.avgpool(x, kernel=3, strides=1, pads=1)
    pool = b.conv_relu(pool, max(ch - 128, max(ch // 2, 4)), kernel=1)

    return b.concat([branch1, branch3, branch3dbl, pool], axis=1)


def build_inception_v3(
    image_size: int = 96,
    batch_size: int = 1,
    num_classes: int = 100,
    channel_scale: float = 0.5,
    seed: int = 2,
) -> Model:
    """Build the Inception V3 dataflow graph (stem + A/B/E stages)."""
    scale = channel_scale

    def ch(c: int) -> int:
        return max(int(round(c * scale)), 4)

    b = GraphBuilder("inception_v3", seed=seed)
    x = b.input("input", (batch_size, 3, image_size, image_size))

    # Stem
    y = b.conv_relu(x, ch(32), kernel=3, strides=2, name="stem_conv1")
    y = b.conv_relu(y, ch(32), kernel=3, name="stem_conv2")
    y = b.conv_relu(y, ch(64), kernel=3, pads=1, name="stem_conv3")
    y = b.maxpool(y, kernel=3, strides=2)
    y = b.conv_relu(y, ch(80), kernel=1, name="stem_conv4")
    y = b.conv_relu(y, ch(192), kernel=3, name="stem_conv5")
    y = b.maxpool(y, kernel=3, strides=2)

    # 3 x InceptionA
    y = _inception_a(b, y, pool_features=ch(32), ch=ch(64))
    y = _inception_a(b, y, pool_features=ch(64), ch=ch(64))
    y = _inception_a(b, y, pool_features=ch(64), ch=ch(64))

    # Reduction A
    y = _reduction_a(b, y, ch=ch(64))

    # 4 x InceptionB/C (factorized 7x7)
    y = _inception_b(b, y, ch7=ch(128), out_ch=ch(192))
    y = _inception_b(b, y, ch7=ch(160), out_ch=ch(192))
    y = _inception_b(b, y, ch7=ch(160), out_ch=ch(192))
    y = _inception_b(b, y, ch7=ch(192), out_ch=ch(192))

    # Reduction B
    y = _reduction_b(b, y, ch=ch(192))

    # 2 x InceptionE
    y = _inception_e(b, y, ch=ch(320))
    y = _inception_e(b, y, ch=ch(320))

    # Classifier
    y = b.global_avgpool(y)
    y = b.dropout(y, ratio=0.5)
    y = b.flatten(y)
    y = b.gemm(y, num_classes)
    y = b.softmax(y, axis=-1)

    b.output(y)
    return b.build()


# ---------------------------------------------------------------------------
# Inception V4
# ---------------------------------------------------------------------------
def _v4_stem(b: GraphBuilder, x: str, ch) -> str:
    """Inception V4 stem with its two internal fork/join branchings."""
    y = b.conv_relu(x, ch(32), kernel=3, strides=2, name="stem_conv1")
    y = b.conv_relu(y, ch(32), kernel=3, name="stem_conv2")
    y = b.conv_relu(y, ch(64), kernel=3, pads=1, name="stem_conv3")

    pool_a = b.maxpool(y, kernel=3, strides=2)
    conv_a = b.conv_relu(y, ch(96), kernel=3, strides=2)
    y = b.concat([pool_a, conv_a], axis=1)

    left = b.conv_relu(y, ch(64), kernel=1)
    left = b.conv_relu(left, ch(96), kernel=3)
    right = b.conv_relu(y, ch(64), kernel=1)
    right = b.conv_relu(right, ch(64), kernel=(1, 7), pads=(0, 3))
    right = b.conv_relu(right, ch(64), kernel=(7, 1), pads=(3, 0))
    right = b.conv_relu(right, ch(96), kernel=3)
    y = b.concat([left, right], axis=1)

    conv_b = b.conv_relu(y, ch(192), kernel=3, strides=2)
    pool_b = b.maxpool(y, kernel=3, strides=2)
    return b.concat([conv_b, pool_b], axis=1)


def build_inception_v4(
    image_size: int = 96,
    batch_size: int = 1,
    num_classes: int = 100,
    channel_scale: float = 0.5,
    seed: int = 3,
) -> Model:
    """Build the Inception V4 dataflow graph (larger stem, 4xA / 7xB / 3xE)."""
    scale = channel_scale

    def ch(c: int) -> int:
        return max(int(round(c * scale)), 4)

    b = GraphBuilder("inception_v4", seed=seed)
    x = b.input("input", (batch_size, 3, image_size, image_size))

    y = _v4_stem(b, x, ch)

    # 4 x InceptionA
    for _ in range(4):
        y = _inception_a(b, y, pool_features=ch(96), ch=ch(64))

    # Reduction A
    y = _reduction_a(b, y, ch=ch(96))

    # 7 x InceptionB
    for _ in range(7):
        y = _inception_b(b, y, ch7=ch(192), out_ch=ch(224))

    # Reduction B
    y = _reduction_b(b, y, ch=ch(192))

    # 3 x InceptionE (called InceptionC in the V4 paper)
    for _ in range(3):
        y = _inception_e(b, y, ch=ch(256))

    # Classifier
    y = b.global_avgpool(y)
    y = b.dropout(y, ratio=0.2)
    y = b.flatten(y)
    y = b.gemm(y, num_classes)
    y = b.softmax(y, axis=-1)

    b.output(y)
    return b.build()
