"""RetinaNet dataflow graph.

RetinaNet couples a ResNet-50-style backbone with a Feature Pyramid
Network and two dense prediction heads (classification and box regression)
applied to five pyramid levels.  The per-level heads are mutually
independent subgraphs — natural task-parallel material.  Table I lists 450
nodes and a potential parallelism of 1.2x; Table IV reports a measured
speedup of 1.3x, the one model that beats its static estimate.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.ir.builder import GraphBuilder
from repro.ir.model import Model


def _conv_bn_relu(b: GraphBuilder, x: str, out_ch: int, kernel: int = 3,
                  strides: int = 1, pads: int = 1) -> str:
    """Conv + BatchNorm + ReLU block (the ResNet idiom)."""
    y = b.conv(x, out_ch, kernel=kernel, strides=strides, pads=pads, bias=False)
    y = b.batchnorm(y)
    return b.relu(y)


def _bottleneck(b: GraphBuilder, x: str, mid_ch: int, out_ch: int,
                strides: int = 1, project: bool = False) -> str:
    """ResNet bottleneck: 1x1 reduce, 3x3, 1x1 expand, residual add."""
    y = _conv_bn_relu(b, x, mid_ch, kernel=1, pads=0)
    y = _conv_bn_relu(b, y, mid_ch, kernel=3, strides=strides, pads=1)
    y = b.conv(y, out_ch, kernel=1, pads=0, bias=False)
    y = b.batchnorm(y)
    if project or strides != 1:
        shortcut = b.conv(x, out_ch, kernel=1, strides=strides, pads=0, bias=False)
        shortcut = b.batchnorm(shortcut)
    else:
        shortcut = x
    y = b.add(y, shortcut)
    return b.relu(y)


def _resnet_stage(b: GraphBuilder, x: str, mid_ch: int, out_ch: int, blocks: int,
                  strides: int) -> str:
    y = _bottleneck(b, x, mid_ch, out_ch, strides=strides, project=True)
    for _ in range(blocks - 1):
        y = _bottleneck(b, y, mid_ch, out_ch)
    return y


def _fpn(b: GraphBuilder, c3: str, c4: str, c5: str, fpn_ch: int) -> List[str]:
    """Feature pyramid: lateral 1x1s, top-down adds, 3x3 smoothing, P6/P7."""
    lat5 = b.conv(c5, fpn_ch, kernel=1, pads=0, name="fpn_lateral5")
    lat4 = b.conv(c4, fpn_ch, kernel=1, pads=0, name="fpn_lateral4")
    lat3 = b.conv(c3, fpn_ch, kernel=1, pads=0, name="fpn_lateral3")

    p5 = b.conv(lat5, fpn_ch, kernel=3, pads=1, name="fpn_out5")
    up5 = b.resize(lat5, scale=2.0, name="fpn_up5")
    merged4 = b.add(lat4, up5, name="fpn_merge4")
    p4 = b.conv(merged4, fpn_ch, kernel=3, pads=1, name="fpn_out4")
    up4 = b.resize(merged4, scale=2.0, name="fpn_up4")
    merged3 = b.add(lat3, up4, name="fpn_merge3")
    p3 = b.conv(merged3, fpn_ch, kernel=3, pads=1, name="fpn_out3")

    p6 = b.conv(c5, fpn_ch, kernel=3, strides=2, pads=1, name="fpn_p6")
    p7_in = b.relu(p6, name="fpn_p7_relu")
    p7 = b.conv(p7_in, fpn_ch, kernel=3, strides=2, pads=1, name="fpn_p7")
    return [p3, p4, p5, p6, p7]


def _head(b: GraphBuilder, feat: str, fpn_ch: int, out_ch: int, depth: int,
          tag: str) -> str:
    """Dense prediction head: ``depth`` conv+relu layers then a prediction conv."""
    y = feat
    for i in range(depth):
        y = b.conv_relu(y, fpn_ch, kernel=3, pads=1, name=f"{tag}_conv{i}")
    pred = b.conv(y, out_ch, kernel=3, pads=1, name=f"{tag}_pred")
    flat = b.flatten(pred, axis=1, name=f"{tag}_flatten")
    return flat


def build_retinanet(
    image_size: int = 64,
    batch_size: int = 1,
    num_classes: int = 20,
    num_anchors: int = 9,
    channel_scale: float = 0.25,
    head_depth: int = 4,
    seed: int = 6,
) -> Model:
    """Build the RetinaNet dataflow graph (ResNet-50 backbone + FPN + heads)."""
    def ch(c: int) -> int:
        return max(int(round(c * channel_scale)), 4)

    b = GraphBuilder("retinanet", seed=seed)
    x = b.input("input", (batch_size, 3, image_size, image_size))

    # ResNet-50 backbone -------------------------------------------------------
    y = _conv_bn_relu(b, x, ch(64), kernel=7, strides=2, pads=3)
    y = b.maxpool(y, kernel=3, strides=2, pads=1)
    c2 = _resnet_stage(b, y, ch(64), ch(256), blocks=3, strides=1)
    c3 = _resnet_stage(b, c2, ch(128), ch(512), blocks=4, strides=2)
    c4 = _resnet_stage(b, c3, ch(256), ch(1024), blocks=6, strides=2)
    c5 = _resnet_stage(b, c4, ch(512), ch(2048), blocks=3, strides=2)

    # FPN ----------------------------------------------------------------------
    fpn_ch = ch(256)
    pyramid = _fpn(b, c3, c4, c5, fpn_ch)

    # Heads on every pyramid level ----------------------------------------------
    cls_outputs = []
    box_outputs = []
    for level, feat in enumerate(pyramid):
        cls_outputs.append(
            _head(b, feat, fpn_ch, num_anchors * num_classes, head_depth, f"cls_p{level+3}"))
        box_outputs.append(
            _head(b, feat, fpn_ch, num_anchors * 4, head_depth, f"box_p{level+3}"))

    cls_cat = b.concat(cls_outputs, axis=1, name="cls_concat")
    cls_prob = b.sigmoid(cls_cat, name="cls_prob")
    box_cat = b.concat(box_outputs, axis=1, name="box_concat")

    b.output(cls_prob)
    b.output(box_cat)
    return b.build()
