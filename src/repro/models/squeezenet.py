"""SqueezeNet 1.1 dataflow graph.

The paper's Fig. 1 shows the characteristic SqueezeNet *fire module*: a
squeeze 1x1 convolution feeding two parallel expand branches (1x1 and 3x3)
whose outputs are concatenated.  Those two mutually independent paths are
exactly what the Linear Clustering pass later places on different cores
(Fig. 5).  Table I lists 66 nodes and a potential parallelism of 0.86x —
below 1, predicting a slowdown when parallelized, which Table IV confirms.
"""

from __future__ import annotations

from repro.ir.builder import GraphBuilder
from repro.ir.model import Model


def _fire_module(b: GraphBuilder, x: str, squeeze_ch: int, expand_ch: int) -> str:
    """One fire module: squeeze 1x1 -> (expand 1x1 || expand 3x3) -> concat."""
    squeezed = b.conv_relu(x, squeeze_ch, kernel=1, name=b.fresh("fire_squeeze"))
    expand1 = b.conv_relu(squeezed, expand_ch, kernel=1, name=b.fresh("fire_expand1x1"))
    expand3 = b.conv_relu(squeezed, expand_ch, kernel=3, pads=1,
                          name=b.fresh("fire_expand3x3"))
    return b.concat([expand1, expand3], axis=1)


def build_squeezenet(
    image_size: int = 64,
    batch_size: int = 1,
    num_classes: int = 100,
    channel_scale: float = 1.0,
    seed: int = 0,
) -> Model:
    """Build the SqueezeNet 1.1 dataflow graph.

    Parameters
    ----------
    image_size:
        Input spatial resolution (the paper uses 224; the default is reduced
        so real execution stays fast — topology and node count are identical).
    batch_size:
        Leading batch dimension (1 for the paper's main experiments).
    num_classes:
        Classifier width.
    channel_scale:
        Multiplier on channel widths (1.0 reproduces the standard widths).
    seed:
        RNG seed for the random weights.
    """
    def ch(c: int) -> int:
        return max(int(round(c * channel_scale)), 4)

    b = GraphBuilder("squeezenet", seed=seed)
    x = b.input("input", (batch_size, 3, image_size, image_size))

    # Stem
    y = b.conv_relu(x, ch(64), kernel=3, strides=2, pads=1, name="stem_conv")
    y = b.maxpool(y, kernel=3, strides=2, ceil_mode=True)

    # Fire modules 2-3
    y = _fire_module(b, y, ch(16), ch(64))
    y = _fire_module(b, y, ch(16), ch(64))
    y = b.maxpool(y, kernel=3, strides=2, ceil_mode=True)

    # Fire modules 4-5
    y = _fire_module(b, y, ch(32), ch(128))
    y = _fire_module(b, y, ch(32), ch(128))
    y = b.maxpool(y, kernel=3, strides=2, ceil_mode=True)

    # Fire modules 6-9
    y = _fire_module(b, y, ch(48), ch(192))
    y = _fire_module(b, y, ch(48), ch(192))
    y = _fire_module(b, y, ch(64), ch(256))
    y = _fire_module(b, y, ch(64), ch(256))

    # Classifier: final 1x1 conv to num_classes, global pool, flatten, softmax
    y = b.conv_relu(y, num_classes, kernel=1, name="classifier_conv")
    y = b.global_avgpool(y)
    y = b.flatten(y)
    y = b.softmax(y, axis=-1)

    b.output(y)
    return b.build()
