"""NASNet-A dataflow graph.

NASNet is the largest and most complex graph in the paper's study: more
than a thousand nodes, a huge fan-out at the cell boundaries (every cell
consumes the outputs of the previous *two* cells, and inside a cell five
independent blocks all read the same inputs), and a mix of heavy separable
convolutions with cheap slice/gather/reshape bookkeeping ops.  Table I
lists 1426 nodes and a potential parallelism of 3.7x — by far the highest
— and Table IV reports the best measured LC speedup (1.7x, rising to 1.91x
once constant propagation prunes the graph, Table VI).

Each cell in this builder also carries a small all-static bookkeeping
subgraph (shape reconstruction of the paper's path-dropout masks) and a
dead auxiliary branch; these are the structures that CP+DCE removes,
collapsing the cluster count exactly as Table III reports (67 -> 9).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.ir.builder import GraphBuilder
from repro.ir.model import Model


def _sep_conv(b: GraphBuilder, x: str, out_ch: int, kernel: int, tag: str) -> str:
    """NASNet separable-convolution block.

    As in the original architecture the separable convolution is applied
    *twice*: ReLU -> depthwise -> pointwise -> BN, repeated.  This is what
    makes NASNet's node count so large relative to its depth.
    """
    y = x
    for rep in range(2):
        y = b.relu(y, name=b.fresh(f"{tag}_relu{rep}"))
        y = b.depthwise_conv(y, kernel=kernel, pads=kernel // 2,
                             name=b.fresh(f"{tag}_dw{rep}"))
        y = b.conv(y, out_ch, kernel=1, pads=0, name=b.fresh(f"{tag}_pw{rep}"))
        y = b.batchnorm(y)
    return y


def _adjust(b: GraphBuilder, x: str, out_ch: int, tag: str, strides: int = 1) -> str:
    """1x1 projection aligning channel counts (and optionally spatial size)."""
    y = b.relu(x, name=b.fresh(f"{tag}_adj_relu"))
    return b.conv(y, out_ch, kernel=1, strides=strides, pads=0,
                  name=b.fresh(f"{tag}_adj_conv"))


def _hp_stride(b: GraphBuilder, prev: str, prev_prev: str) -> int:
    """Stride needed to bring ``prev_prev`` down to ``prev``'s spatial size.

    After a reduction cell the newest cell output has half the spatial
    resolution of the one before it; the skip path is then downsampled with
    a strided 1x1 projection (the "factorized reduction" of the NASNet
    paper, simplified).
    """
    s_prev = b.shapes.get(prev)
    s_prev_prev = b.shapes.get(prev_prev)
    if (s_prev and s_prev_prev and len(s_prev) == 4 and len(s_prev_prev) == 4
            and s_prev[2] and s_prev_prev[2] and s_prev_prev[2] > s_prev[2]):
        return max(int(round(s_prev_prev[2] / s_prev[2])), 1)
    return 1


def _static_bookkeeping(b: GraphBuilder, x: str, tag: str) -> str:
    """All-static mask subgraph (constant-foldable; feeds a dead branch).

    Mirrors the exported path-dropout / shape bookkeeping chains present in
    the NASNet ONNX graph: every input is either an initializer or the
    static shape of an activation, so constant propagation reduces the whole
    chain to a literal and DCE then deletes it because nothing live uses it.
    """
    shape = b.shape_of(x, name=f"{tag}_shape")
    chan_idx = b.const(np.asarray([1], dtype=np.int64), prefix=f"{tag}_cidx")
    chan = b.gather(shape, chan_idx, axis=0, name=f"{tag}_chan")
    chan_f = b.cast(chan, to="float32", name=f"{tag}_chan_f")
    keep_prob = b.const(np.asarray(0.9, dtype=np.float32), prefix=f"{tag}_keep")
    scaled = b.mul(chan_f, keep_prob, name=f"{tag}_scaled")
    dead = b.sqrt(scaled, name=f"{tag}_dead_sqrt")
    return dead


def _normal_cell(b: GraphBuilder, prev: str, prev_prev: str, out_ch: int,
                 tag: str) -> str:
    """NASNet-A normal cell: 5 blocks, each combining two parallel branches."""
    h = _adjust(b, prev, out_ch, f"{tag}_h")
    hp = _adjust(b, prev_prev, out_ch, f"{tag}_hp",
                 strides=_hp_stride(b, prev, prev_prev))

    # Block 1: sep3x3(h) + identity(h)
    b1 = b.add(_sep_conv(b, h, out_ch, 3, f"{tag}_b1a"), h, name=f"{tag}_b1_add")
    # Block 2: sep3x3(hp) + sep5x5(h)
    b2 = b.add(_sep_conv(b, hp, out_ch, 3, f"{tag}_b2a"),
               _sep_conv(b, h, out_ch, 5, f"{tag}_b2b"), name=f"{tag}_b2_add")
    # Block 3: avgpool(h) + identity(hp)
    b3 = b.add(b.avgpool(h, kernel=3, strides=1, pads=1, name=f"{tag}_b3_pool"),
               hp, name=f"{tag}_b3_add")
    # Block 4: avgpool(hp) + avgpool(hp)
    b4 = b.add(b.avgpool(hp, kernel=3, strides=1, pads=1, name=f"{tag}_b4_pool1"),
               b.avgpool(hp, kernel=3, strides=1, pads=1, name=f"{tag}_b4_pool2"),
               name=f"{tag}_b4_add")
    # Block 5: sep5x5(hp) + sep3x3(hp)
    b5 = b.add(_sep_conv(b, hp, out_ch, 5, f"{tag}_b5a"),
               _sep_conv(b, hp, out_ch, 3, f"{tag}_b5b"), name=f"{tag}_b5_add")

    _static_bookkeeping(b, b1, f"{tag}_mask")
    return b.concat([b1, b2, b3, b4, b5], axis=1, name=f"{tag}_concat")


def _reduction_cell(b: GraphBuilder, prev: str, prev_prev: str, out_ch: int,
                    tag: str) -> str:
    """NASNet-A reduction cell: strided branches halving the spatial size."""
    h = _adjust(b, prev, out_ch, f"{tag}_h")
    hp = _adjust(b, prev_prev, out_ch, f"{tag}_hp",
                 strides=_hp_stride(b, prev, prev_prev))

    def strided_sep(x: str, kernel: int, sub_tag: str) -> str:
        y = b.relu(x, name=b.fresh(f"{sub_tag}_relu"))
        y = b.conv(y, out_ch, kernel=kernel, strides=2, pads=kernel // 2,
                   name=b.fresh(f"{sub_tag}_conv"))
        return y

    b1 = b.add(strided_sep(h, 5, f"{tag}_b1a"), strided_sep(hp, 7, f"{tag}_b1b"),
               name=f"{tag}_b1_add")
    b2 = b.add(b.maxpool(h, kernel=3, strides=2, pads=1, name=f"{tag}_b2_pool"),
               strided_sep(hp, 7, f"{tag}_b2b"), name=f"{tag}_b2_add")
    b3 = b.add(b.avgpool(h, kernel=3, strides=2, pads=1, name=f"{tag}_b3_pool"),
               strided_sep(hp, 5, f"{tag}_b3b"), name=f"{tag}_b3_add")
    b4 = b.add(b.maxpool(h, kernel=3, strides=2, pads=1, name=f"{tag}_b4_pool"),
               _sep_conv(b, b1, out_ch, 3, f"{tag}_b4b"), name=f"{tag}_b4_add")

    _static_bookkeeping(b, b1, f"{tag}_mask")
    return b.concat([b1, b2, b3, b4], axis=1, name=f"{tag}_concat")


def build_nasnet(
    image_size: int = 32,
    batch_size: int = 1,
    num_classes: int = 100,
    num_cells_per_stack: int = 7,
    channels: int = 32,
    seed: int = 7,
) -> Model:
    """Build the NASNet-A dataflow graph.

    Parameters
    ----------
    num_cells_per_stack:
        Number of normal cells per stack (three stacks separated by two
        reduction cells).  The default of 6 gives ~1400 nodes, matching
        Table I's 1426; tests use smaller values.
    channels:
        Base channel count (doubled after each reduction cell).
    """
    b = GraphBuilder("nasnet", seed=seed)
    x = b.input("input", (batch_size, 3, image_size, image_size))

    # Stem
    stem = b.conv(x, channels, kernel=3, strides=1, pads=1, name="stem_conv")
    stem = b.batchnorm(stem)

    prev_prev, prev = stem, stem
    ch = channels
    cell_idx = 0
    for stack in range(3):
        for _ in range(num_cells_per_stack):
            out = _normal_cell(b, prev, prev_prev, ch, f"cell{cell_idx}")
            prev_prev, prev = prev, out
            cell_idx += 1
        if stack < 2:
            ch *= 2
            out = _reduction_cell(b, prev, prev_prev, ch, f"reduce{stack}")
            prev_prev, prev = prev, out
            cell_idx += 1

    # Classifier
    y = b.relu(prev, name="head_relu")
    y = b.global_avgpool(y)
    y = b.flatten(y)
    y = b.gemm(y, num_classes)
    y = b.softmax(y, axis=-1)

    b.output(y)
    return b.build()
