"""GoogLeNet (Inception V1) dataflow graph.

Each inception module has four parallel branches (1x1, 1x1->3x3, 1x1->5x5,
pool->1x1) whose outputs are concatenated — a classic fork/join structure
with fan-out 4.  Table I lists 153 nodes and a potential parallelism of
1.4x, which Table IV translates into a 1.2x measured speedup.
"""

from __future__ import annotations

from repro.ir.builder import GraphBuilder
from repro.ir.model import Model


def _inception_module(
    b: GraphBuilder,
    x: str,
    ch1x1: int,
    ch3x3_reduce: int,
    ch3x3: int,
    ch5x5_reduce: int,
    ch5x5: int,
    pool_proj: int,
) -> str:
    """One GoogLeNet inception module (4 parallel branches + concat)."""
    branch1 = b.conv_relu(x, ch1x1, kernel=1, name=b.fresh("incep_b1"))

    branch2 = b.conv_relu(x, ch3x3_reduce, kernel=1, name=b.fresh("incep_b2_reduce"))
    branch2 = b.conv_relu(branch2, ch3x3, kernel=3, pads=1, name=b.fresh("incep_b2"))

    branch3 = b.conv_relu(x, ch5x5_reduce, kernel=1, name=b.fresh("incep_b3_reduce"))
    branch3 = b.conv_relu(branch3, ch5x5, kernel=5, pads=2, name=b.fresh("incep_b3"))

    branch4 = b.maxpool(x, kernel=3, strides=1, pads=1, name=b.fresh("incep_b4_pool"))
    branch4 = b.conv_relu(branch4, pool_proj, kernel=1, name=b.fresh("incep_b4"))

    return b.concat([branch1, branch2, branch3, branch4], axis=1)


def build_googlenet(
    image_size: int = 64,
    batch_size: int = 1,
    num_classes: int = 100,
    channel_scale: float = 1.0,
    seed: int = 1,
) -> Model:
    """Build the GoogLeNet dataflow graph (nine inception modules)."""
    def ch(c: int) -> int:
        return max(int(round(c * channel_scale)), 4)

    b = GraphBuilder("googlenet", seed=seed)
    x = b.input("input", (batch_size, 3, image_size, image_size))

    # Stem
    y = b.conv_relu(x, ch(64), kernel=7, strides=2, pads=3, name="stem_conv1")
    y = b.maxpool(y, kernel=3, strides=2, ceil_mode=True)
    y = b.conv_relu(y, ch(64), kernel=1, name="stem_conv2_reduce")
    y = b.conv_relu(y, ch(192), kernel=3, pads=1, name="stem_conv2")
    y = b.maxpool(y, kernel=3, strides=2, ceil_mode=True)

    # Inception 3a, 3b
    y = _inception_module(b, y, ch(64), ch(96), ch(128), ch(16), ch(32), ch(32))
    y = _inception_module(b, y, ch(128), ch(128), ch(192), ch(32), ch(96), ch(64))
    y = b.maxpool(y, kernel=3, strides=2, ceil_mode=True)

    # Inception 4a-4e
    y = _inception_module(b, y, ch(192), ch(96), ch(208), ch(16), ch(48), ch(64))
    y = _inception_module(b, y, ch(160), ch(112), ch(224), ch(24), ch(64), ch(64))
    y = _inception_module(b, y, ch(128), ch(128), ch(256), ch(24), ch(64), ch(64))
    y = _inception_module(b, y, ch(112), ch(144), ch(288), ch(32), ch(64), ch(64))
    y = _inception_module(b, y, ch(256), ch(160), ch(320), ch(32), ch(128), ch(128))
    y = b.maxpool(y, kernel=3, strides=2, ceil_mode=True)

    # Inception 5a, 5b
    y = _inception_module(b, y, ch(256), ch(160), ch(320), ch(32), ch(128), ch(128))
    y = _inception_module(b, y, ch(384), ch(192), ch(384), ch(48), ch(128), ch(128))

    # Classifier
    y = b.global_avgpool(y)
    y = b.flatten(y)
    y = b.dropout(y, ratio=0.4)
    y = b.gemm(y, num_classes)
    y = b.softmax(y, axis=-1)

    b.output(y)
    return b.build()
