"""BERT encoder dataflow graph.

The paper's Fig. 3 shows the repeated multi-headed-attention (MHA)
sub-graph structure hanging off each layer input.  ONNX exports of BERT
decompose LayerNorm and GELU into primitive operators and materialize the
attention-head reshapes through Shape/Gather/Unsqueeze/Concat chains whose
inputs are static — the constant-propagation fodder behind Table III (BERT
cluster count drops from 5 to 3 after CP+DCE, speedup rises from 1.07x to
1.15x).  Table I lists 963 nodes and a potential parallelism of 1.27x.
"""

from __future__ import annotations

import numpy as np

from repro.ir.builder import GraphBuilder
from repro.ir.dtypes import DType
from repro.ir.model import Model


def _decomposed_layernorm(b: GraphBuilder, x: str, hidden: int, tag: str) -> str:
    """LayerNorm spelled out as primitive ops (ReduceMean/Sub/Pow/Sqrt/Div/Mul/Add)."""
    mean = b.reduce_mean(x, axes=[-1], keepdims=True, name=f"{tag}_mean")
    centered = b.sub(x, mean, name=f"{tag}_center")
    two = b.const(np.asarray(2.0, dtype=np.float32), prefix=f"{tag}_two")
    sq = b.pow(centered, two, name=f"{tag}_sq")
    var = b.reduce_mean(sq, axes=[-1], keepdims=True, name=f"{tag}_var")
    eps = b.const(np.asarray(1e-5, dtype=np.float32), prefix=f"{tag}_eps")
    var_eps = b.add(var, eps, name=f"{tag}_var_eps")
    std = b.sqrt(var_eps, name=f"{tag}_std")
    normed = b.div(centered, std, name=f"{tag}_norm")
    gamma = b.initializer(b.fresh(f"{tag}_gamma"), np.ones(hidden, dtype=np.float32))
    beta = b.initializer(b.fresh(f"{tag}_beta"), np.zeros(hidden, dtype=np.float32))
    scaled = b.mul(normed, gamma, name=f"{tag}_scale")
    return b.add(scaled, beta, name=f"{tag}_shift")


def _decomposed_gelu(b: GraphBuilder, x: str, tag: str) -> str:
    """GELU as exported to ONNX: x * 0.5 * (1 + erf(x / sqrt(2)))."""
    sqrt2 = b.const(np.asarray(np.sqrt(2.0), dtype=np.float32), prefix=f"{tag}_sqrt2")
    scaled = b.div(x, sqrt2, name=f"{tag}_div")
    erf = b.erf(scaled, name=f"{tag}_erf")
    one = b.const(np.asarray(1.0, dtype=np.float32), prefix=f"{tag}_one")
    shifted = b.add(erf, one, name=f"{tag}_add1")
    half = b.const(np.asarray(0.5, dtype=np.float32), prefix=f"{tag}_half")
    halved = b.mul(shifted, half, name=f"{tag}_half_mul")
    return b.mul(x, halved, name=f"{tag}_out")


def _static_reshape_chain(b: GraphBuilder, x: str, target: list, tag: str) -> str:
    """Reshape whose target shape is assembled from a Shape/Gather/Concat chain.

    Exported transformer graphs compute the head-split shapes dynamically
    even though every term is static; constant propagation collapses the
    whole chain into a literal shape.
    """
    shape = b.shape_of(x, name=f"{tag}_shape")
    batch_idx = b.const(np.asarray([0], dtype=np.int64), prefix=f"{tag}_bidx")
    seq_idx = b.const(np.asarray([1], dtype=np.int64), prefix=f"{tag}_sidx")
    batch_dim = b.gather(shape, batch_idx, axis=0, name=f"{tag}_bdim")
    seq_dim = b.gather(shape, seq_idx, axis=0, name=f"{tag}_sdim")
    tail = b.const(np.asarray(target[2:], dtype=np.int64), prefix=f"{tag}_tail")
    full_shape = b.concat([batch_dim, seq_dim, tail], axis=0, name=f"{tag}_target")
    out = b.node("Reshape", [x, full_shape], name=f"{tag}_reshape", shape=list(target))
    b.shapes[out] = tuple(target)
    return out


def _attention_block(b: GraphBuilder, x: str, hidden: int, num_heads: int,
                     batch: int, seq: int, layer: int) -> str:
    """Multi-headed self-attention with explicit head split/merge reshapes."""
    head_dim = hidden // num_heads
    tag = f"l{layer}_attn"

    # Q, K, V projections run in parallel off the same layer input (Fig. 3).
    q = b.linear(x, hidden, name=f"{tag}_q")
    k = b.linear(x, hidden, name=f"{tag}_k")
    v = b.linear(x, hidden, name=f"{tag}_v")

    q = _static_reshape_chain(b, q, [batch, seq, num_heads, head_dim], f"{tag}_qsplit")
    k = _static_reshape_chain(b, k, [batch, seq, num_heads, head_dim], f"{tag}_ksplit")
    v = _static_reshape_chain(b, v, [batch, seq, num_heads, head_dim], f"{tag}_vsplit")

    q = b.transpose(q, [0, 2, 1, 3], name=f"{tag}_qt")
    k = b.transpose(k, [0, 2, 3, 1], name=f"{tag}_kt")
    v = b.transpose(v, [0, 2, 1, 3], name=f"{tag}_vt")

    scores = b.matmul(q, k, name=f"{tag}_scores")
    scale = b.const(np.asarray(np.sqrt(head_dim), dtype=np.float32), prefix=f"{tag}_scale")
    scores = b.div(scores, scale, name=f"{tag}_scaled")
    mask = b.initializer(b.fresh(f"{tag}_mask"),
                         np.zeros((1, 1, seq, seq), dtype=np.float32))
    scores = b.add(scores, mask, name=f"{tag}_masked")
    probs = b.softmax(scores, axis=-1, name=f"{tag}_probs")

    context = b.matmul(probs, v, name=f"{tag}_context")
    context = b.transpose(context, [0, 2, 1, 3], name=f"{tag}_ct")
    context = _static_reshape_chain(b, context, [batch, seq, hidden], f"{tag}_merge")

    out = b.linear(context, hidden, name=f"{tag}_proj")
    return out


def _transformer_layer(b: GraphBuilder, x: str, hidden: int, num_heads: int,
                       ffn_dim: int, batch: int, seq: int, layer: int) -> str:
    """One encoder layer: MHA + residual + LN, FFN + residual + LN."""
    attn = _attention_block(b, x, hidden, num_heads, batch, seq, layer)
    res1 = b.add(x, attn, name=f"l{layer}_res1")
    norm1 = _decomposed_layernorm(b, res1, hidden, f"l{layer}_ln1")

    ffn = b.linear(norm1, ffn_dim, name=f"l{layer}_ffn1")
    ffn = _decomposed_gelu(b, ffn, f"l{layer}_gelu")
    ffn = b.linear(ffn, hidden, name=f"l{layer}_ffn2")
    res2 = b.add(norm1, ffn, name=f"l{layer}_res2")
    return _decomposed_layernorm(b, res2, hidden, f"l{layer}_ln2")


def build_bert(
    seq_len: int = 64,
    batch_size: int = 1,
    hidden: int = 256,
    num_heads: int = 4,
    num_layers: int = 12,
    ffn_dim: int = 0,
    vocab_size: int = 1000,
    seed: int = 5,
) -> Model:
    """Build a BERT-base-shaped encoder dataflow graph.

    ``hidden``/``ffn_dim`` default to reduced widths so real execution is
    laptop-friendly; the node count and graph topology match the full model
    (12 layers, per-layer MHA/FFN decomposition as exported to ONNX).
    """
    ffn_dim = ffn_dim or hidden * 4
    b = GraphBuilder("bert", seed=seed)

    input_ids = b.input("input_ids", (batch_size, seq_len), dtype=DType.INT64)

    # Embeddings: token + position + segment, then LayerNorm.
    token_table = b.initializer(
        "token_embeddings",
        (np.random.default_rng(seed).standard_normal((vocab_size, hidden)) * 0.02
         ).astype(np.float32))
    word_emb = b.gather(token_table, input_ids, axis=0, name="word_embeddings")
    b.shapes[word_emb] = (batch_size, seq_len, hidden)

    pos_table = b.initializer(
        "position_embeddings",
        (np.random.default_rng(seed + 1).standard_normal((1, seq_len, hidden)) * 0.02
         ).astype(np.float32))
    seg_table = b.initializer(
        "segment_embeddings",
        (np.random.default_rng(seed + 2).standard_normal((1, seq_len, hidden)) * 0.02
         ).astype(np.float32))
    emb = b.add(word_emb, pos_table, name="emb_add_pos")
    emb = b.add(emb, seg_table, name="emb_add_seg")
    y = _decomposed_layernorm(b, emb, hidden, "emb_ln")

    for layer in range(num_layers):
        y = _transformer_layer(b, y, hidden, num_heads, ffn_dim,
                               batch_size, seq_len, layer)

    # Pooler: first-token slice -> dense -> tanh (classification head).
    cls = b.slice(y, starts=[0], ends=[1], axes=[1], name="pooler_slice")
    cls = b.reshape(cls, [batch_size, hidden], name="pooler_reshape")
    pooled = b.linear(cls, hidden, name="pooler_dense")
    pooled = b.tanh(pooled, name="pooler_tanh")
    logits = b.linear(pooled, 2, name="classifier")
    probs = b.softmax(logits, axis=-1, name="probs")

    b.output(probs)
    return b.build()
