"""Model zoo: programmatic builders for the paper's eight benchmark graphs.

The paper extracts its models as ONNX files from the PyTorch 2.0 repository,
HuggingFace and the ONNX model zoo.  Those pretrained artifacts are not
available offline, so each module here *reconstructs the dataflow-graph
topology* of the corresponding architecture: the fork/join structure, the
operator mix, and an approximate node count matching Table I.  Weights are
random (seeded) — the clustering, pruning and code-generation algorithms
never look at weight values, only at graph structure and static costs.

Use :func:`build_model` / :func:`repro.models.zoo.list_models` to obtain
models by name, including the reduced-size variants used by the tests.
"""

from repro.models.zoo import (
    MODEL_REGISTRY,
    PAPER_TABLE1,
    ModelSpec,
    build_model,
    build_all_models,
    list_models,
    paper_reference,
)
from repro.models.squeezenet import build_squeezenet
from repro.models.googlenet import build_googlenet
from repro.models.inception import build_inception_v3, build_inception_v4
from repro.models.yolo import build_yolo_v5
from repro.models.bert import build_bert
from repro.models.retinanet import build_retinanet
from repro.models.nasnet import build_nasnet

__all__ = [
    "MODEL_REGISTRY",
    "PAPER_TABLE1",
    "ModelSpec",
    "build_model",
    "build_all_models",
    "list_models",
    "paper_reference",
    "build_squeezenet",
    "build_googlenet",
    "build_inception_v3",
    "build_inception_v4",
    "build_yolo_v5",
    "build_bert",
    "build_retinanet",
    "build_nasnet",
]
