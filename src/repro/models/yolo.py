"""YOLO V5 dataflow graph.

YOLOv5 uses Conv->Sigmoid->Mul ("SiLU") blocks, CSP bottlenecks (C3
modules), an SPPF block and an FPN/PAN neck feeding three detection heads.
The detection heads are followed by grid/anchor post-processing subgraphs
built from Shape/Range/Expand/Concat operators whose inputs are entirely
static — exactly the structures the paper prunes with constant propagation
and dead-code elimination (Fig. 6, Table III: Yolo's cluster count drops
from 12 to 9 after CP+DCE and its speedup recovers from 0.96x to 1.06x).

Table I lists 280 nodes and a potential parallelism of 1.18x.
"""

from __future__ import annotations

import numpy as np

from repro.ir.builder import GraphBuilder
from repro.ir.model import Model


def _cbs(b: GraphBuilder, x: str, out_ch: int, kernel: int = 3, strides: int = 1,
         pads: int = 1) -> str:
    """Conv + Sigmoid + Mul block (SiLU activation spelled out as in ONNX exports)."""
    conv = b.conv(x, out_ch, kernel=kernel, strides=strides, pads=pads,
                  name=b.fresh("cbs_conv"))
    sig = b.sigmoid(conv)
    return b.mul(conv, sig)


def _bottleneck(b: GraphBuilder, x: str, ch: int, shortcut: bool = True) -> str:
    """Standard YOLO bottleneck: two CBS blocks with an optional residual add."""
    y = _cbs(b, x, ch, kernel=1, pads=0)
    y = _cbs(b, y, ch, kernel=3, pads=1)
    if shortcut:
        y = b.add(x, y)
    return y


def _c3(b: GraphBuilder, x: str, out_ch: int, n: int = 1, shortcut: bool = True) -> str:
    """C3 CSP module: two parallel 1x1 paths, ``n`` bottlenecks, concat, 1x1 fuse."""
    hidden = max(out_ch // 2, 4)
    main = _cbs(b, x, hidden, kernel=1, pads=0)
    for _ in range(n):
        main = _bottleneck(b, main, hidden, shortcut=shortcut)
    side = _cbs(b, x, hidden, kernel=1, pads=0)
    merged = b.concat([main, side], axis=1)
    return _cbs(b, merged, out_ch, kernel=1, pads=0)


def _sppf(b: GraphBuilder, x: str, out_ch: int) -> str:
    """Spatial pyramid pooling (fast): cascaded max-pools concatenated."""
    hidden = max(out_ch // 2, 4)
    y = _cbs(b, x, hidden, kernel=1, pads=0)
    p1 = b.maxpool(y, kernel=5, strides=1, pads=2)
    p2 = b.maxpool(p1, kernel=5, strides=1, pads=2)
    p3 = b.maxpool(p2, kernel=5, strides=1, pads=2)
    merged = b.concat([y, p1, p2, p3], axis=1)
    return _cbs(b, merged, out_ch, kernel=1, pads=0)


def _detect_head(b: GraphBuilder, feat: str, num_outputs: int, num_anchors: int = 3,
                 level: int = 0) -> str:
    """One detection head with the constant-foldable grid/anchor post-processing."""
    pred = b.conv(feat, num_anchors * num_outputs, kernel=1,
                  name=f"detect_conv_p{level}")
    sig = b.sigmoid(pred)

    # ---- grid generation subgraph (all-static, prunable by CP+DCE) --------
    # In the exported ONNX graph this is built from Shape/Gather/Range/etc.;
    # every input is an initializer or a static shape, so constant folding
    # collapses the whole chain to a single constant grid tensor.
    shape = b.shape_of(pred, name=f"grid_shape_p{level}")
    h_idx = b.const(np.asarray([2], dtype=np.int64), prefix=f"grid_h_index_p{level}")
    w_idx = b.const(np.asarray([3], dtype=np.int64), prefix=f"grid_w_index_p{level}")
    grid_h = b.gather(shape, h_idx, axis=0, name=f"grid_h_p{level}")
    grid_w = b.gather(shape, w_idx, axis=0, name=f"grid_w_p{level}")
    grid_hw = b.concat([grid_h, grid_w], axis=0, name=f"grid_hw_p{level}")
    grid_cast = b.cast(grid_hw, to="float32", name=f"grid_cast_p{level}")
    anchor = b.const(
        np.asarray([[10.0, 13.0], [16.0, 30.0], [33.0, 23.0]], dtype=np.float32) / (8 << level),
        prefix=f"anchors_p{level}",
    )
    anchor_scaled = b.mul(anchor, b.const(np.asarray(8 << level, dtype=np.float32),
                                          prefix=f"stride_p{level}"),
                          name=f"anchor_scale_p{level}")
    # Dead branch: the training-time loss target normalization is exported
    # but its result feeds nothing (classic DCE fodder).
    dead = b.div(anchor_scaled, grid_cast, name=f"dead_norm_p{level}")
    dead = b.sqrt(dead, name=f"dead_sqrt_p{level}")

    # ---- live decode path ---------------------------------------------------
    # Box decoding splits the prediction into xy / wh / objectness+class
    # slices that are decoded by three mutually independent arithmetic
    # chains before being concatenated back — small parallel paths hanging
    # off each detection head, as in the exported YOLOv5 graph.
    per_anchor = num_outputs
    xy = b.slice(sig, starts=[0], ends=[2 * num_anchors], axes=[1],
                 name=f"decode_xy_slice_p{level}")
    wh = b.slice(sig, starts=[2 * num_anchors], ends=[4 * num_anchors], axes=[1],
                 name=f"decode_wh_slice_p{level}")
    conf = b.slice(sig, starts=[4 * num_anchors], ends=[num_anchors * per_anchor], axes=[1],
                   name=f"decode_conf_slice_p{level}")

    two = b.const(np.asarray(2.0, dtype=np.float32), prefix=f"decode_two_p{level}")
    half = b.const(np.asarray(0.5, dtype=np.float32), prefix=f"decode_half_p{level}")
    stride_c = b.const(np.asarray(float(8 << level), dtype=np.float32),
                       prefix=f"decode_stride_p{level}")

    xy_d = b.mul(xy, two, name=f"decode_xy_mul_p{level}")
    xy_d = b.sub(xy_d, half, name=f"decode_xy_sub_p{level}")
    xy_d = b.mul(xy_d, stride_c, name=f"decode_xy_scale_p{level}")

    wh_d = b.mul(wh, two, name=f"decode_wh_mul_p{level}")
    wh_d = b.pow(wh_d, two, name=f"decode_wh_pow_p{level}")
    wh_d = b.mul(wh_d, stride_c, name=f"decode_wh_scale_p{level}")

    conf_d = b.mul(conf, b.const(np.asarray(1.0, dtype=np.float32),
                                 prefix=f"decode_conf_one_p{level}"),
                   name=f"decode_conf_mul_p{level}")

    decoded = b.concat([xy_d, wh_d, conf_d], axis=1, name=f"decode_concat_p{level}")
    flat = b.flatten(decoded, axis=1, name=f"decode_flatten_p{level}")
    return flat


def build_yolo_v5(
    image_size: int = 64,
    batch_size: int = 1,
    num_classes: int = 20,
    channel_scale: float = 0.25,
    seed: int = 4,
) -> Model:
    """Build the YOLO V5 dataflow graph (backbone + PAN neck + 3 detect heads)."""
    def ch(c: int) -> int:
        return max(int(round(c * channel_scale)), 4)

    b = GraphBuilder("yolo_v5", seed=seed)
    x = b.input("input", (batch_size, 3, image_size, image_size))

    # Backbone ---------------------------------------------------------------
    y = _cbs(b, x, ch(64), kernel=6, strides=2, pads=2)          # P1
    y = _cbs(b, y, ch(128), kernel=3, strides=2, pads=1)         # P2
    y = _c3(b, y, ch(128), n=1)
    y = _cbs(b, y, ch(256), kernel=3, strides=2, pads=1)         # P3
    p3 = _c3(b, y, ch(256), n=2)
    y = _cbs(b, p3, ch(512), kernel=3, strides=2, pads=1)        # P4
    p4 = _c3(b, y, ch(512), n=3)
    y = _cbs(b, p4, ch(1024), kernel=3, strides=2, pads=1)       # P5
    y = _c3(b, y, ch(1024), n=1)
    p5 = _sppf(b, y, ch(1024))

    # Neck (FPN top-down) ------------------------------------------------------
    up5 = _cbs(b, p5, ch(512), kernel=1, pads=0)
    up5_resized = b.resize(up5, scale=2.0)
    cat4 = b.concat([up5_resized, p4], axis=1)
    n4 = _c3(b, cat4, ch(512), n=1, shortcut=False)

    up4 = _cbs(b, n4, ch(256), kernel=1, pads=0)
    up4_resized = b.resize(up4, scale=2.0)
    cat3 = b.concat([up4_resized, p3], axis=1)
    n3 = _c3(b, cat3, ch(256), n=1, shortcut=False)               # detect P3

    # Neck (PAN bottom-up) ------------------------------------------------------
    down3 = _cbs(b, n3, ch(256), kernel=3, strides=2, pads=1)
    cat4b = b.concat([down3, up4], axis=1)
    n4b = _c3(b, cat4b, ch(512), n=1, shortcut=False)              # detect P4

    down4 = _cbs(b, n4b, ch(512), kernel=3, strides=2, pads=1)
    cat5b = b.concat([down4, up5], axis=1)
    n5b = _c3(b, cat5b, ch(1024), n=1, shortcut=False)             # detect P5

    # Detection heads -----------------------------------------------------------
    num_outputs = num_classes + 5
    d3 = _detect_head(b, n3, num_outputs, level=0)
    d4 = _detect_head(b, n4b, num_outputs, level=1)
    d5 = _detect_head(b, n5b, num_outputs, level=2)

    out = b.concat([d3, d4, d5], axis=1, name="detections")
    b.output(out)
    return b.build()
