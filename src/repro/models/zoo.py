"""Model registry and the paper's reference numbers.

:data:`MODEL_REGISTRY` maps the model names used throughout the paper's
tables to builder callables with two standard configurations:

* ``default`` — the full-size graph whose node count approximates Table I,
* ``small`` — a reduced variant used by the test-suite so that end-to-end
  tests (including real execution of generated parallel code) stay fast.

:data:`PAPER_TABLE1` records the values the paper reports in Table I so
that benchmarks and EXPERIMENTS.md can print paper-vs-measured columns.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from repro.ir.model import Model
from repro.models.bert import build_bert
from repro.models.googlenet import build_googlenet
from repro.models.inception import build_inception_v3, build_inception_v4
from repro.models.nasnet import build_nasnet
from repro.models.retinanet import build_retinanet
from repro.models.squeezenet import build_squeezenet
from repro.models.yolo import build_yolo_v5


@dataclasses.dataclass(frozen=True)
class ModelSpec:
    """One registered model: builder callable plus configuration presets."""

    name: str
    builder: Callable[..., Model]
    default_kwargs: Dict[str, object]
    small_kwargs: Dict[str, object]
    description: str = ""

    def build(self, variant: str = "default", **overrides) -> Model:
        """Build the model in the requested variant with optional overrides."""
        if variant == "default":
            kwargs = dict(self.default_kwargs)
        elif variant == "small":
            kwargs = dict(self.small_kwargs)
        else:
            raise ValueError(f"unknown variant {variant!r}; use 'default' or 'small'")
        kwargs.update(overrides)
        return self.builder(**kwargs)


#: Paper Table I — potential parallelism in the studied ML dataflow graphs.
PAPER_TABLE1: Dict[str, Dict[str, float]] = {
    "squeezenet": {"nodes": 66, "wt_node_cost": 187, "wt_cp": 218, "parallelism": 0.86},
    "googlenet": {"nodes": 153, "wt_node_cost": 373, "wt_cp": 264, "parallelism": 1.4},
    "inception_v3": {"nodes": 238, "wt_node_cost": 1136, "wt_cp": 829, "parallelism": 1.37},
    "inception_v4": {"nodes": 339, "wt_node_cost": 1763, "wt_cp": 1334, "parallelism": 1.32},
    "yolo_v5": {"nodes": 280, "wt_node_cost": 730, "wt_cp": 619, "parallelism": 1.18},
    "retinanet": {"nodes": 450, "wt_node_cost": 1291, "wt_cp": 1102, "parallelism": 1.2},
    "bert": {"nodes": 963, "wt_node_cost": 21357, "wt_cp": 16870, "parallelism": 1.27},
    "nasnet": {"nodes": 1426, "wt_node_cost": 8147, "wt_cp": 2187, "parallelism": 3.7},
}

#: Paper Table II — number of clusters before/after cluster merging.
PAPER_TABLE2: Dict[str, Dict[str, int]] = {
    "squeezenet": {"before": 9, "after": 2},
    "googlenet": {"before": 30, "after": 4},
    "inception_v3": {"before": 38, "after": 6},
    "inception_v4": {"before": 55, "after": 6},
    "yolo_v5": {"before": 29, "after": 12},
    "bert": {"before": 76, "after": 5},
    "retinanet": {"before": 16, "after": 10},
    "nasnet": {"before": 244, "after": 67},
}

#: Paper Table III — clusters after constant propagation + DCE.
PAPER_TABLE3: Dict[str, Dict[str, int]] = {
    "yolo_v5": {"before_cp": 12, "after_cp": 9},
    "nasnet": {"before_cp": 67, "after_cp": 9},
    "bert": {"before_cp": 5, "after_cp": 3},
}

#: Paper Table IV — sequential vs LC-parallel runtime (ms) and speedup.
PAPER_TABLE4: Dict[str, Dict[str, float]] = {
    "squeezenet": {"parallelism": 0.86, "clusters": 2, "seq_ms": 85, "par_ms": 103, "speedup": 0.83},
    "googlenet": {"parallelism": 1.4, "clusters": 4, "seq_ms": 188, "par_ms": 156, "speedup": 1.2},
    "inception_v3": {"parallelism": 1.37, "clusters": 6, "seq_ms": 559, "par_ms": 422, "speedup": 1.32},
    "inception_v4": {"parallelism": 1.32, "clusters": 6, "seq_ms": 1212, "par_ms": 840, "speedup": 1.44},
    "yolo_v5": {"parallelism": 1.18, "clusters": 12, "seq_ms": 790, "par_ms": 820, "speedup": 0.96},
    "bert": {"parallelism": 1.27, "clusters": 6, "seq_ms": 3296, "par_ms": 3071, "speedup": 1.07},
    "retinanet": {"parallelism": 1.2, "clusters": 10, "seq_ms": 4311, "par_ms": 3361, "speedup": 1.3},
    "nasnet": {"parallelism": 3.7, "clusters": 67, "seq_ms": 2271, "par_ms": 1351, "speedup": 1.7},
}

#: Paper Table VI — speedup with LC vs LC + CP + DCE.
PAPER_TABLE6: Dict[str, Dict[str, float]] = {
    "yolo_v5": {"s_lc": 0.96, "s_lc_dce": 1.06},
    "bert": {"s_lc": 1.07, "s_lc_dce": 1.15},
    "nasnet": {"s_lc": 1.7, "s_lc_dce": 1.91},
}

#: Paper Table VII — overall speedups (LC, +CP/DCE, +cloning, overall).
PAPER_TABLE7: Dict[str, Dict[str, Optional[float]]] = {
    "squeezenet": {"s_lc": 0.83, "s_lc_dce": None, "s_lc_clone": 0.95, "s_overall": 0.95},
    "googlenet": {"s_lc": 1.2, "s_lc_dce": None, "s_lc_clone": 1.33, "s_overall": 1.33},
    "inception_v3": {"s_lc": 1.32, "s_lc_dce": None, "s_lc_clone": 1.42, "s_overall": 1.42},
    "inception_v4": {"s_lc": 1.44, "s_lc_dce": None, "s_lc_clone": 1.55, "s_overall": 1.55},
    "bert": {"s_lc": 1.07, "s_lc_dce": 1.15, "s_lc_clone": 1.1, "s_overall": 1.18},
    "yolo_v5": {"s_lc": 0.96, "s_lc_dce": 1.06, "s_lc_clone": None, "s_overall": 1.06},
    "retinanet": {"s_lc": 1.3, "s_lc_dce": None, "s_lc_clone": 1.4, "s_overall": 1.4},
    "nasnet": {"s_lc": 1.7, "s_lc_dce": 1.91, "s_lc_clone": None, "s_overall": 1.91},
}

#: Paper Table VIII — comparison with IOS (speedup + compile time seconds).
PAPER_TABLE8: Dict[str, Dict[str, float]] = {
    "squeezenet": {"speedup_ours": 0.95, "ct_ours_s": 2.2, "speedup_ios": 1.15, "ct_ios_s": 60},
    "inception_v3": {"speedup_ours": 1.55, "ct_ours_s": 5.2, "speedup_ios": 1.59, "ct_ios_s": 60},
    "nasnet": {"speedup_ours": 1.91, "ct_ours_s": 9.7, "speedup_ios": 1.4, "ct_ios_s": 5400},
}


MODEL_REGISTRY: Dict[str, ModelSpec] = {
    "squeezenet": ModelSpec(
        name="squeezenet",
        builder=build_squeezenet,
        default_kwargs={"image_size": 64},
        small_kwargs={"image_size": 32, "channel_scale": 0.5},
        description="SqueezeNet 1.1 — fire modules with two parallel expand branches",
    ),
    "googlenet": ModelSpec(
        name="googlenet",
        builder=build_googlenet,
        default_kwargs={"image_size": 64},
        small_kwargs={"image_size": 32, "channel_scale": 0.25},
        description="GoogLeNet — nine 4-way inception modules",
    ),
    "inception_v3": ModelSpec(
        name="inception_v3",
        builder=build_inception_v3,
        default_kwargs={"image_size": 96},
        small_kwargs={"image_size": 96, "channel_scale": 0.25},
        description="Inception V3 — A/B/E inception stages with factorized convolutions",
    ),
    "inception_v4": ModelSpec(
        name="inception_v4",
        builder=build_inception_v4,
        default_kwargs={"image_size": 96},
        small_kwargs={"image_size": 96, "channel_scale": 0.25},
        description="Inception V4 — larger stem and more inception stages",
    ),
    "yolo_v5": ModelSpec(
        name="yolo_v5",
        builder=build_yolo_v5,
        default_kwargs={"image_size": 64},
        small_kwargs={"image_size": 32, "channel_scale": 0.125},
        description="YOLO V5 — CSP backbone, PAN neck, 3 detect heads with static grid chains",
    ),
    "retinanet": ModelSpec(
        name="retinanet",
        builder=build_retinanet,
        default_kwargs={"image_size": 64},
        small_kwargs={"image_size": 32, "channel_scale": 0.125, "head_depth": 2},
        description="RetinaNet — ResNet-50 backbone, FPN and per-level dense heads",
    ),
    "bert": ModelSpec(
        name="bert",
        builder=build_bert,
        default_kwargs={"seq_len": 64, "hidden": 256, "num_layers": 12},
        small_kwargs={"seq_len": 16, "hidden": 64, "num_layers": 2},
        description="BERT encoder — 12 transformer layers with decomposed LayerNorm/GELU",
    ),
    "nasnet": ModelSpec(
        name="nasnet",
        builder=build_nasnet,
        default_kwargs={"image_size": 32, "num_cells_per_stack": 7, "channels": 32},
        small_kwargs={"image_size": 16, "num_cells_per_stack": 1, "channels": 8},
        description="NASNet-A — stacked search cells with very high fan-out",
    ),
}

#: Aliases accepted by :func:`build_model` (paper table spellings).
_ALIASES = {
    "inception": "inception_v3",
    "inceptionv3": "inception_v3",
    "inceptionv4": "inception_v4",
    "yolo": "yolo_v5",
    "yolov5": "yolo_v5",
    "googlenet": "googlenet",
    "squeeznet": "squeezenet",
}


def list_models() -> List[str]:
    """Names of all registered models, in the paper's Table-I order."""
    return list(MODEL_REGISTRY)


def paper_reference(table: str = "table1") -> Dict[str, Dict]:
    """Return one of the paper's reference tables by short name."""
    tables = {
        "table1": PAPER_TABLE1,
        "table2": PAPER_TABLE2,
        "table3": PAPER_TABLE3,
        "table4": PAPER_TABLE4,
        "table6": PAPER_TABLE6,
        "table7": PAPER_TABLE7,
        "table8": PAPER_TABLE8,
    }
    try:
        return tables[table.lower()]
    except KeyError as exc:
        raise KeyError(f"unknown paper table {table!r}; options: {sorted(tables)}") from exc


def build_model(name: str, variant: str = "default", **overrides) -> Model:
    """Build a registered model by name (aliases like "yolo" are accepted)."""
    key = name.lower().replace("-", "_").replace(" ", "_")
    key = _ALIASES.get(key, key)
    if key not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {list_models()}")
    return MODEL_REGISTRY[key].build(variant=variant, **overrides)


def build_all_models(variant: str = "default") -> Dict[str, Model]:
    """Build every registered model (used by the Table I / II benchmarks)."""
    return {name: spec.build(variant=variant) for name, spec in MODEL_REGISTRY.items()}
