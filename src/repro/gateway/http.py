"""A minimal HTTP/1.1 layer over asyncio streams (stdlib only).

Just enough protocol for the gateway: request-line + header parsing,
``Content-Length`` bodies, keep-alive, and response rendering.  Chunked
request bodies are refused with 501 (clients of an inference API send
sized JSON bodies), and every bound (line length, header count, body
size) is explicit so a misbehaving peer cannot balloon memory.

The parser is deliberately a standalone function over an
``asyncio.StreamReader`` so unit tests can drive it with in-memory
streams — no sockets required.
"""

from __future__ import annotations

import asyncio
import dataclasses
from typing import Dict, Optional, Tuple
from urllib.parse import unquote

__all__ = [
    "HTTPError",
    "HTTPRequest",
    "read_request",
    "render_response",
]

MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 32 * 1024
DEFAULT_MAX_BODY = 64 * 1024 * 1024

_REASONS = {
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HTTPError(Exception):
    """A malformed or unserviceable request; becomes an error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclasses.dataclass
class HTTPRequest:
    """One parsed request."""

    method: str
    path: str
    query: str
    version: str
    #: header names lower-cased; later duplicates win
    headers: Dict[str, str]
    body: bytes

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """A header value by case-insensitive name."""
        return self.headers.get(name.lower(), default)

    @property
    def keep_alive(self) -> bool:
        """Whether the connection survives this exchange."""
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"


async def read_request(reader: asyncio.StreamReader,
                       max_body: int = DEFAULT_MAX_BODY
                       ) -> Optional[HTTPRequest]:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`HTTPError` for protocol violations (the caller renders
    the error and closes) and propagates ``asyncio.IncompleteReadError``
    for mid-request disconnects.
    """
    try:
        raw = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests
        raise
    except asyncio.LimitOverrunError:
        raise HTTPError(413, "request head exceeds the stream limit") from None
    if len(raw) > MAX_REQUEST_LINE + MAX_HEADER_BYTES:
        raise HTTPError(413, "request head too large")

    head = raw[:-4].decode("latin-1")
    lines = head.split("\r\n")
    request_line = lines[0]
    parts = request_line.split(" ")
    if len(parts) != 3:
        raise HTTPError(400, f"malformed request line: {request_line!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HTTPError(400, f"unsupported HTTP version {version!r}")

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HTTPError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    path, _, query = target.partition("?")
    path = unquote(path)

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HTTPError(501, "chunked request bodies are not supported")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HTTPError(400, "malformed Content-Length") from None
        if length < 0:
            raise HTTPError(400, "negative Content-Length")
        if length > max_body:
            raise HTTPError(
                413, f"request body of {length} bytes exceeds the "
                f"{max_body}-byte limit")
        if length:
            body = await reader.readexactly(length)
    elif method in ("POST", "PUT", "PATCH"):
        raise HTTPError(400, f"{method} request without Content-Length")

    return HTTPRequest(method=method, path=path, query=query,
                       version=version, headers=headers, body=body)


def render_response(status: int, body: bytes = b"",
                    content_type: str = "application/json",
                    extra_headers: Optional[Dict[str, str]] = None,
                    keep_alive: bool = True) -> bytes:
    """Serialize one response (status line, headers, body) to wire bytes."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines).encode("latin-1") + b"\r\n\r\n"
    return head + body


def parse_response(raw: bytes) -> Tuple[int, Dict[str, str], bytes]:
    """Split raw response bytes into (status, headers, body) — client side."""
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    return status, headers, body
