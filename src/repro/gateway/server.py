"""The asyncio HTTP gateway over one :class:`InferenceEngine`.

``GatewayServer`` is the network front door the ROADMAP's "heavy traffic"
north star needs: a stdlib-only ``asyncio.start_server`` loop speaking
just enough HTTP/1.1 (:mod:`repro.gateway.http`) to expose

* ``POST /v1/models/{name}/infer`` — JSON tensors in, JSON tensors out
  (:mod:`repro.gateway.codec`); tenant via the ``X-Tenant`` header,
  per-request deadline budget via ``X-Deadline-S``.
* ``GET /healthz`` — liveness plus drain state (503 while draining so
  load balancers stop routing here before shutdown).
* ``GET /metrics`` — Prometheus text from the engine's one
  :class:`~repro.observability.MetricsRegistry` (``gateway_*``,
  ``qos_*`` and ``serving_*`` families together).

Requests bridge onto the engine without blocking the event loop:
``submit`` (which admits, and may *compile* on first sight of a
signature) runs on a small thread pool via ``run_in_executor``, and the
returned ``concurrent.futures.Future`` is awaited through
``asyncio.wrap_future``.  QoS rejections map to honest status codes —
429/503 with ``Retry-After`` from the admission layer's dispatch-rate
estimate, 504 for exhausted deadline budgets, 403 for unknown tenants
under strict tenancy — the overload contract the load harness
(:mod:`repro.gateway.loadgen`) measures against.

Lifecycle: ``begin_drain()`` flips new infer requests to 503 while
in-flight ones finish (``await drained()``), then ``shutdown()`` closes
the listener.  :class:`GatewayThread` packages the whole lifecycle on a
background thread for tests, benchmarks and the ``ramiel load`` verb.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Mapping, Optional

from repro.gateway import codec
from repro.gateway.http import (
    DEFAULT_MAX_BODY,
    HTTPError,
    HTTPRequest,
    read_request,
    render_response,
)
from repro.serving.batching import ServingError
from repro.serving.engine import InferenceEngine, ShapeMismatchError
from repro.serving.qos import QoSError

__all__ = ["GatewayConfig", "GatewayServer", "GatewayThread"]


@dataclasses.dataclass
class GatewayConfig:
    """Configuration of one :class:`GatewayServer`."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (read it back from ``server.port``)
    port: int = 0
    #: request-body size bound (413 beyond it)
    max_body_bytes: int = DEFAULT_MAX_BODY
    #: threads bridging submit() (admission + possible compile) off the
    #: event loop; replies themselves are driven by future callbacks, so
    #: this bounds concurrent *submissions*, not concurrent requests
    submit_workers: int = 4
    #: per-request wall-clock bound awaiting the engine's answer
    response_timeout_s: float = 300.0


class GatewayServer:
    """Serve one engine's models over HTTP; see the module docstring."""

    def __init__(self, engine: InferenceEngine, models: Mapping[str, object],
                 config: Optional[GatewayConfig] = None) -> None:
        self.engine = engine
        self.models = dict(models)
        self.config = config or GatewayConfig()
        self.registry = engine.registry
        self.tracer = engine.tracer
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.submit_workers,
            thread_name_prefix="gateway-submit")
        self._draining = False
        self._active = 0
        self._idle: Optional[asyncio.Event] = None
        self._requests_total: Dict[tuple, object] = {}
        self._latency_hist = self.registry.histogram(
            "gateway_request_seconds",
            "Wall-clock latency of gateway requests (accept to respond)")
        self._active_gauge = self.registry.gauge(
            "gateway_active_requests", "Requests currently being served")
        self._bytes_in = self.registry.counter(
            "gateway_bytes_received_total", "Request body bytes received")
        self._bytes_out = self.registry.counter(
            "gateway_bytes_sent_total", "Response bytes sent")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener (ephemeral port resolved afterwards)."""
        self._loop = asyncio.get_running_loop()
        self._idle = asyncio.Event()
        self._idle.set()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host,
            port=self.config.port,
            limit=max(self.config.max_body_bytes, DEFAULT_MAX_BODY) + 64 * 1024)

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        """True once :meth:`begin_drain` has been called."""
        return self._draining

    def begin_drain(self) -> None:
        """Stop accepting new inference work; in-flight requests finish.

        New ``POST .../infer`` requests get 503 + ``Retry-After`` and
        ``/healthz`` reports draining, while already-accepted requests
        run to completion — the graceful half of shutdown, split out so
        callers (and tests) can observe the drain window.
        """
        self._draining = True
        if self.engine.qos is not None:
            # Reject at the admission layer too, so direct in-process
            # submitters see the same drain the gateway advertises.
            self.engine.qos.begin_drain()

    async def drained(self, timeout: float = 30.0) -> bool:
        """Wait until no request is in flight; False on timeout."""
        if self._idle is None:
            return True
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=timeout)
            return True
        except asyncio.TimeoutError:
            return False

    async def shutdown(self, drain_timeout: float = 30.0) -> bool:
        """Drain, then close the listener; True if the drain completed."""
        self.begin_drain()
        completed = await self.drained(timeout=drain_timeout)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._pool.shutdown(wait=False)
        return completed

    async def serve_forever(self) -> None:
        """Run the bound listener until cancelled."""
        if self._server is None:
            raise RuntimeError("call start() first")
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body=self.config.max_body_bytes)
                except HTTPError as exc:
                    writer.write(self._error_response(
                        exc.status, str(exc), keep_alive=False))
                    await writer.drain()
                    return
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                if request is None:
                    return
                keep_alive = request.keep_alive
                response = await self._respond(request, keep_alive)
                self._bytes_out.inc(len(response))
                try:
                    writer.write(response)
                    await writer.drain()
                except ConnectionError:
                    return
                if not keep_alive:
                    return
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _respond(self, request: HTTPRequest, keep_alive: bool) -> bytes:
        tracer = self.tracer
        t0 = tracer.now() if tracer is not None else 0.0
        start = asyncio.get_running_loop().time()
        self._active += 1
        self._active_gauge.set(self._active)
        if self._idle is not None:
            self._idle.clear()
        self._bytes_in.inc(len(request.body))
        status = 500
        try:
            status, body, headers = await self._route(request)
            return render_response(status, body, extra_headers=headers,
                                   keep_alive=keep_alive)
        except HTTPError as exc:
            status = exc.status
            return self._error_response(status, str(exc), keep_alive=keep_alive)
        except Exception as exc:  # noqa: BLE001 - translate, never crash the loop
            status, headers = self._map_error(exc)
            return self._error_response(status, str(exc), headers=headers,
                                        keep_alive=keep_alive)
        finally:
            self._active -= 1
            self._active_gauge.set(self._active)
            if self._active == 0 and self._idle is not None:
                self._idle.set()
            self._latency_hist.observe(
                asyncio.get_running_loop().time() - start)
            self._count_request(request.method, request.path, status)
            if tracer is not None:
                tracer.emit("gateway.request", "gateway", t0, tracer.now(),
                            args={"method": request.method,
                                  "path": request.path, "status": status})

    def _count_request(self, method: str, path: str, status: int) -> None:
        route = path
        if path.startswith("/v1/models/"):
            route = "/v1/models/{name}/infer"
        key = (method, route, status)
        counter = self._requests_total.get(key)
        if counter is None:
            counter = self.registry.counter(
                "gateway_requests_total", "Gateway requests by route and status",
                labels={"method": method, "route": route,
                        "status": str(status)})
            self._requests_total[key] = counter
        counter.inc()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(self, request: HTTPRequest):
        path = request.path
        if path == "/healthz":
            if request.method != "GET":
                raise HTTPError(405, "healthz supports GET only")
            status = 503 if self._draining else 200
            body = json.dumps({
                "status": "draining" if self._draining else "ok",
                "models": sorted(self.models),
            }).encode()
            return status, body, {}
        if path == "/metrics":
            if request.method != "GET":
                raise HTTPError(405, "metrics supports GET only")
            text = self.registry.render_prometheus().encode()
            return 200, text, {"Content-Type": "text/plain; version=0.0.4"}
        if path.startswith("/v1/models/") and path.endswith("/infer"):
            if request.method != "POST":
                raise HTTPError(405, "infer supports POST only")
            name = path[len("/v1/models/"):-len("/infer")]
            return await self._infer(name, request)
        raise HTTPError(404, f"no route for {request.method} {path}")

    async def _infer(self, name: str, request: HTTPRequest):
        if self._draining:
            raise HTTPError(503, "gateway is draining; retry elsewhere")
        model = self.models.get(name)
        if model is None:
            raise HTTPError(
                404, f"unknown model {name!r}; served models: "
                f"{sorted(self.models)}")
        try:
            inputs = codec.decode_request(request.body)
        except codec.CodecError as exc:
            raise HTTPError(400, str(exc)) from None
        tenant = request.header("x-tenant")
        deadline_s: Optional[float] = None
        raw_deadline = request.header("x-deadline-s")
        if raw_deadline is not None:
            try:
                deadline_s = float(raw_deadline)
            except ValueError:
                raise HTTPError(
                    400, f"malformed X-Deadline-S: {raw_deadline!r}") from None

        loop = asyncio.get_running_loop()
        # submit() admits synchronously and may compile on a cold artifact
        # — keep both off the event loop.  QoS rejections raise here and
        # surface through _map_error with their Retry-After hints.
        inner = await loop.run_in_executor(
            self._pool, lambda: self.engine.submit(
                model, inputs, tenant=tenant, deadline_s=deadline_s))
        outputs = await asyncio.wait_for(
            asyncio.wrap_future(inner),
            timeout=self.config.response_timeout_s)
        return 200, codec.encode_outputs(outputs), {}

    # ------------------------------------------------------------------
    # Error mapping
    # ------------------------------------------------------------------
    @staticmethod
    def _map_error(exc: BaseException):
        """(status, extra headers) for an engine/QoS exception."""
        if isinstance(exc, QoSError):
            headers = {}
            if exc.retry_after_s is not None:
                headers["Retry-After"] = f"{exc.retry_after_s:g}"
            return exc.http_status, headers
        if isinstance(exc, ShapeMismatchError):
            return 400, {}
        if isinstance(exc, asyncio.TimeoutError):
            return 504, {}
        if isinstance(exc, ServingError):
            return 503, {"Retry-After": "1"}
        return 500, {}

    def _error_response(self, status: int, message: str,
                        headers: Optional[Dict[str, str]] = None,
                        keep_alive: bool = True) -> bytes:
        body = json.dumps({"error": message, "status": status}).encode()
        return render_response(status, body, extra_headers=headers,
                               keep_alive=keep_alive)


class GatewayThread:
    """Run a :class:`GatewayServer` on a background thread with its own loop.

    ``start()`` blocks until the listener is bound (so ``port`` is valid
    the moment it returns); ``stop()`` drains, closes and joins.  Used by
    tests, the load benchmark, the demo and the ``ramiel load`` verb —
    anywhere the caller itself is synchronous.
    """

    def __init__(self, server: GatewayServer) -> None:
        self.server = server
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._stop_requested = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._drained = False

    def start(self, timeout: float = 10.0) -> "GatewayThread":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="gateway")
        self._thread.start()
        if not self._started.wait(timeout=timeout):
            raise RuntimeError("gateway failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError("gateway failed to start") \
                from self._startup_error
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        try:
            await self.server.start()
        except BaseException as exc:  # noqa: BLE001 - surface to start()
            self._startup_error = exc
            self._started.set()
            return
        self._loop = asyncio.get_running_loop()
        self._started.set()
        stop = asyncio.Event()
        self._stop_event = stop
        await stop.wait()
        self._drained = await self.server.shutdown()

    @property
    def port(self) -> int:
        return self.server.port

    def begin_drain(self) -> None:
        """Thread-safe :meth:`GatewayServer.begin_drain`."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.server.begin_drain)

    def stop(self, timeout: float = 30.0) -> bool:
        """Drain + shutdown; True if every in-flight request completed.

        Idempotent — a second call (e.g. explicit stop inside a ``with``
        block) just reports the first call's outcome.
        """
        if self._thread is None:
            return True
        if self._loop is not None and not self._stop_requested.is_set():
            self._stop_requested.set()
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=timeout)
        return self._drained

    def __enter__(self) -> "GatewayThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
