"""Open-loop, multi-tenant load generation against a running gateway.

A *closed-loop* driver (N threads, each submit-and-wait) self-throttles:
when the server slows down, so does the offered load, which hides every
saturation behaviour worth measuring.  This harness is **open loop** —
each tenant's arrivals follow a Poisson process (exponential
inter-arrival times at the configured rate) *independent of completions*,
so offered load above capacity actually lands on the server and the
backpressure contract (429/503 + ``Retry-After``, bounded p99 for
admitted work, weighted fairness) is observable instead of asserted.

Everything is stdlib ``asyncio``: each in-flight request is a task with
its own connection (an open-loop driver cannot share a small pool —
waiting for a free connection would close the loop again).  Results
aggregate per tenant into :class:`TenantReport`.
"""

from __future__ import annotations

import asyncio
import dataclasses
import random
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.gateway import codec
from repro.gateway.http import parse_response

__all__ = [
    "LoadReport",
    "LoadSpec",
    "TenantReport",
    "http_request",
    "run_load",
]


@dataclasses.dataclass(frozen=True)
class LoadSpec:
    """One tenant's offered load."""

    tenant: str
    model: str
    #: request-body bytes fired on every arrival (pre-encoded once)
    body: bytes
    #: mean arrival rate, requests/second (Poisson process)
    rate_rps: float
    #: X-Deadline-S header attached to every request (None = none)
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be > 0")


@dataclasses.dataclass
class TenantReport:
    """Aggregated outcomes of one tenant's offered load."""

    tenant: str
    sent: int = 0
    ok: int = 0
    rejected_429: int = 0
    rejected_503: int = 0
    expired_504: int = 0
    other_status: int = 0
    transport_errors: int = 0
    retry_after_seen: int = 0
    latencies_s: List[float] = dataclasses.field(default_factory=list)

    @property
    def rejected(self) -> int:
        """Backpressure rejections (the 429/503 family)."""
        return self.rejected_429 + self.rejected_503

    @property
    def dropped(self) -> int:
        """Requests that vanished without an HTTP answer — must be zero."""
        return self.transport_errors

    def percentile_ms(self, q: float) -> float:
        """Latency percentile of *admitted* (200) requests, milliseconds."""
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_s), q) * 1e3)

    def summary(self, duration_s: float) -> Dict[str, float]:
        """Flat dict for printing/asserting."""
        return {
            "sent": self.sent,
            "ok": self.ok,
            "rejected_429": self.rejected_429,
            "rejected_503": self.rejected_503,
            "expired_504": self.expired_504,
            "other_status": self.other_status,
            "transport_errors": self.transport_errors,
            "goodput_rps": round(self.ok / duration_s, 2) if duration_s else 0.0,
            "p50_ms": round(self.percentile_ms(50), 2),
            "p99_ms": round(self.percentile_ms(99), 2),
        }


@dataclasses.dataclass
class LoadReport:
    """The whole run: per-tenant reports plus the offered-load window."""

    duration_s: float
    tenants: Dict[str, TenantReport]

    @property
    def total_ok(self) -> int:
        return sum(t.ok for t in self.tenants.values())

    @property
    def total_rejected(self) -> int:
        return sum(t.rejected for t in self.tenants.values())

    @property
    def total_dropped(self) -> int:
        return sum(t.dropped for t in self.tenants.values())

    def render(self) -> str:
        """A per-tenant table for humans."""
        lines = [f"{'tenant':<12} {'sent':>6} {'ok':>6} {'429':>5} {'503':>5} "
                 f"{'504':>5} {'err':>4} {'goodput':>8} {'p50ms':>8} {'p99ms':>8}"]
        for name in sorted(self.tenants):
            s = self.tenants[name].summary(self.duration_s)
            lines.append(
                f"{name:<12} {s['sent']:>6} {s['ok']:>6} "
                f"{s['rejected_429']:>5} {s['rejected_503']:>5} "
                f"{s['expired_504']:>5} {s['transport_errors']:>4} "
                f"{s['goodput_rps']:>8} {s['p50_ms']:>8} {s['p99_ms']:>8}")
        return "\n".join(lines)


async def http_request(host: str, port: int, method: str, path: str,
                       body: bytes = b"",
                       headers: Optional[Dict[str, str]] = None,
                       timeout: float = 60.0):
    """One HTTP exchange on a fresh connection; (status, headers, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        lines = [f"{method} {path} HTTP/1.1",
                 f"Host: {host}:{port}",
                 f"Content-Length: {len(body)}",
                 "Connection: close"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write("\r\n".join(lines).encode() + b"\r\n\r\n" + body)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout=timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass
    return parse_response(raw)


async def _fire_one(host: str, port: int, spec: LoadSpec,
                    report: TenantReport, timeout: float) -> None:
    loop = asyncio.get_running_loop()
    headers = {"X-Tenant": spec.tenant}
    if spec.deadline_s is not None:
        headers["X-Deadline-S"] = f"{spec.deadline_s:g}"
    start = loop.time()
    try:
        status, resp_headers, _ = await http_request(
            host, port, "POST", f"/v1/models/{spec.model}/infer",
            body=spec.body, headers=headers, timeout=timeout)
    except (ConnectionError, asyncio.TimeoutError, asyncio.IncompleteReadError,
            OSError):
        report.transport_errors += 1
        return
    elapsed = loop.time() - start
    if status == 200:
        report.ok += 1
        report.latencies_s.append(elapsed)
    elif status == 429:
        report.rejected_429 += 1
    elif status == 503:
        report.rejected_503 += 1
    elif status == 504:
        report.expired_504 += 1
    else:
        report.other_status += 1
    if "retry-after" in resp_headers:
        report.retry_after_seen += 1


async def _tenant_loop(host: str, port: int, spec: LoadSpec,
                       report: TenantReport, duration_s: float,
                       rng: random.Random, timeout: float,
                       inflight: List["asyncio.Task"]) -> None:
    loop = asyncio.get_running_loop()
    start = loop.time()
    next_arrival = start
    while True:
        next_arrival += rng.expovariate(spec.rate_rps)
        if next_arrival - start >= duration_s:
            return
        delay = next_arrival - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        # Open loop: fire-and-track, never wait for the answer here.
        report.sent += 1
        inflight.append(asyncio.ensure_future(
            _fire_one(host, port, spec, report, timeout)))


async def run_load(host: str, port: int, specs: Sequence[LoadSpec],
                   duration_s: float, seed: int = 0,
                   request_timeout_s: float = 60.0) -> LoadReport:
    """Drive every tenant's Poisson arrivals for ``duration_s`` seconds.

    Returns once every fired request has an outcome — arrivals stop at
    the window's end but in-flight requests are awaited, so ``dropped``
    counts genuine losses, not harness impatience.
    """
    reports = {spec.tenant: TenantReport(tenant=spec.tenant)
               for spec in specs}
    if len(reports) != len(specs):
        raise ValueError("one LoadSpec per tenant, duplicate tenant names")
    inflight: List[asyncio.Task] = []
    generators = [
        _tenant_loop(host, port, spec, reports[spec.tenant], duration_s,
                     random.Random(seed + i), request_timeout_s, inflight)
        for i, spec in enumerate(specs)
    ]
    loop = asyncio.get_running_loop()
    start = loop.time()
    await asyncio.gather(*generators)
    if inflight:
        await asyncio.gather(*inflight, return_exceptions=False)
    elapsed = loop.time() - start
    return LoadReport(duration_s=elapsed, tenants=reports)


def body_for(model) -> bytes:
    """Pre-encode a single-sample request body for a zoo model."""
    from repro.serving.engine import example_inputs
    return codec.encode_request(example_inputs(model))
