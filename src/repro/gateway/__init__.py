"""The HTTP front door: asyncio gateway, tensor codec and load harness.

* :mod:`repro.gateway.server` — :class:`GatewayServer` (asyncio HTTP/1.1
  over one :class:`~repro.serving.engine.InferenceEngine`) and
  :class:`GatewayThread` (background-thread lifecycle for synchronous
  callers).
* :mod:`repro.gateway.codec` — bitwise-exact JSON tensor encoding.
* :mod:`repro.gateway.http` — the minimal HTTP/1.1 parser/renderer.
* :mod:`repro.gateway.loadgen` — open-loop Poisson multi-tenant load
  generation and per-tenant reports.
"""

from repro.gateway.codec import (
    CodecError,
    decode_outputs,
    decode_request,
    encode_outputs,
    encode_request,
)
from repro.gateway.http import HTTPError, HTTPRequest, read_request, render_response
from repro.gateway.loadgen import LoadReport, LoadSpec, TenantReport, run_load
from repro.gateway.server import GatewayConfig, GatewayServer, GatewayThread

__all__ = [
    "CodecError",
    "GatewayConfig",
    "GatewayServer",
    "GatewayThread",
    "HTTPError",
    "HTTPRequest",
    "LoadReport",
    "LoadSpec",
    "TenantReport",
    "decode_outputs",
    "decode_request",
    "encode_outputs",
    "encode_request",
    "read_request",
    "render_response",
    "run_load",
]
