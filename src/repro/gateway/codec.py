"""JSON tensor codec shared by the gateway server and its clients.

Tensors travel as ``{"data": <flat list>, "shape": [...], "dtype": "..."}``.
The encoding is *bitwise exact* for every dtype the zoo models use:
float32 values pass through Python floats (every float32 is exactly
representable as a double, ``repr`` of a double round-trips, and casting
the recovered double back to float32 is exact), and integers are exact in
JSON by construction.  That exactness is load-bearing — the gateway's
acceptance bar is that responses bitwise-match direct
:meth:`~repro.serving.engine.InferenceEngine.submit` results.

Request body::

    {"inputs": {"input": {"data": [...], "shape": [1, 3, 32, 32],
                          "dtype": "float32"}}}

Response body::

    {"outputs": {"output": {"data": [...], "shape": [...], "dtype": "..."}}}
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping

import numpy as np

__all__ = [
    "CodecError",
    "decode_array",
    "decode_request",
    "encode_array",
    "encode_outputs",
    "encode_request",
]


class CodecError(ValueError):
    """A request/response body failed to parse as tensor JSON."""


def encode_array(array: np.ndarray) -> Dict[str, Any]:
    """One ndarray as its JSON-transportable dict form."""
    array = np.asarray(array)
    return {
        "data": array.ravel().tolist(),
        "shape": list(array.shape),
        "dtype": str(array.dtype),
    }


def decode_array(obj: Any, name: str = "") -> np.ndarray:
    """The inverse of :func:`encode_array` (nested lists also accepted)."""
    label = f"tensor {name!r}" if name else "tensor"
    if isinstance(obj, dict):
        try:
            data, shape, dtype = obj["data"], obj["shape"], obj.get(
                "dtype", "float32")
        except KeyError as exc:
            raise CodecError(f"{label}: missing field {exc}") from None
        try:
            array = np.asarray(data, dtype=np.dtype(dtype))
        except (TypeError, ValueError) as exc:
            raise CodecError(f"{label}: {exc}") from None
        try:
            return array.reshape(shape)
        except ValueError:
            raise CodecError(
                f"{label}: {array.size} values do not fill shape "
                f"{tuple(shape)}") from None
    if isinstance(obj, list):
        try:
            return np.asarray(obj, dtype=np.float32)
        except (TypeError, ValueError) as exc:
            raise CodecError(f"{label}: {exc}") from None
    raise CodecError(
        f"{label}: expected a dict with data/shape/dtype or a nested list, "
        f"got {type(obj).__name__}")


def encode_request(inputs: Mapping[str, np.ndarray]) -> bytes:
    """An infer-request body from a feed dict."""
    return json.dumps(
        {"inputs": {name: encode_array(array)
                    for name, array in inputs.items()}}).encode()


def decode_request(body: bytes) -> Dict[str, np.ndarray]:
    """The feed dict from an infer-request body."""
    try:
        payload = json.loads(body)
    except (ValueError, UnicodeDecodeError) as exc:
        raise CodecError(f"request body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict) or "inputs" not in payload:
        raise CodecError('request body must be {"inputs": {name: tensor}}')
    inputs = payload["inputs"]
    if not isinstance(inputs, dict) or not inputs:
        raise CodecError('"inputs" must be a non-empty object')
    return {name: decode_array(obj, name) for name, obj in inputs.items()}


def encode_outputs(outputs: Mapping[str, np.ndarray]) -> bytes:
    """An infer-response body from the engine's output dict."""
    return json.dumps(
        {"outputs": {name: encode_array(array)
                     for name, array in outputs.items()}}).encode()


def decode_outputs(body: bytes) -> Dict[str, np.ndarray]:
    """The output dict from an infer-response body (client side)."""
    try:
        payload = json.loads(body)
    except (ValueError, UnicodeDecodeError) as exc:
        raise CodecError(f"response body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict) or "outputs" not in payload:
        raise CodecError('response body must be {"outputs": {name: tensor}}')
    return {name: decode_array(obj, name)
            for name, obj in payload["outputs"].items()}
