"""Command-line front-end for Ramiel.

Usage examples::

    ramiel list                              # show the model zoo
    ramiel analyze squeezenet                # Table-I style graph metrics
    ramiel compile squeezenet -o out/        # full pipeline + generated code
    ramiel compile bert --prune --clone
    ramiel compile squeezenet --batch-size 4 --switched
    ramiel run squeezenet --backend process  # compile, execute, report speedup
    ramiel warmup squeezenet bert            # pre-compile into the serving cache
    ramiel serve-bench squeezenet googlenet --requests 32 --concurrency 8
    ramiel trace squeezenet --runs 20 -o trace.json   # Perfetto-loadable spans
    ramiel trace squeezenet --executor process        # merged multi-process trace
    ramiel bench-report bench_history/ --threshold 0.1   # perf-trajectory gate
    ramiel serve squeezenet bert --port 8080          # HTTP gateway, foreground
    ramiel load squeezenet googlenet --duration 5 --rate 30 \
        --tenant gold=3 --tenant free=1               # open-loop load harness

The CLI is a thin wrapper over :func:`repro.pipeline.ramiel_compile`; every
capability is also available programmatically.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ramiel",
        description="Automatic task parallelization of ML dataflow graphs "
                    "(reproduction of Das & Rauchwerger).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the models available in the zoo")

    analyze = sub.add_parser("analyze", help="print graph metrics (Table I style)")
    analyze.add_argument("model", help="model name (e.g. squeezenet) or path to a saved model")
    analyze.add_argument("--variant", default="default", choices=["default", "small"])

    compile_p = sub.add_parser("compile", help="run the full Ramiel pipeline")
    compile_p.add_argument("model")
    compile_p.add_argument("--variant", default="default", choices=["default", "small"])
    compile_p.add_argument("-o", "--output-dir", default=None,
                           help="directory for the generated Python modules")
    compile_p.add_argument("--no-prune", action="store_true",
                           help="disable constant propagation / DCE")
    compile_p.add_argument("--clone", action="store_true", help="enable task cloning")
    compile_p.add_argument("--batch-size", type=int, default=1)
    compile_p.add_argument("--switched", action="store_true",
                           help="use switched hyperclusters (batch size > 1)")
    compile_p.add_argument("--cores", type=int, default=12)
    compile_p.add_argument("--json", action="store_true", help="print a JSON summary")

    run_p = sub.add_parser("run", help="compile and execute sequential vs parallel code")
    run_p.add_argument("model")
    run_p.add_argument("--variant", default="small", choices=["default", "small"])
    run_p.add_argument("--backend", default="thread", choices=["thread", "process"])
    run_p.add_argument("--repeats", type=int, default=3)

    warmup_p = sub.add_parser(
        "warmup", help="pre-compile models into a serving engine's artifact cache")
    warmup_p.add_argument("models", nargs="+",
                          help="model names (e.g. squeezenet bert)")
    warmup_p.add_argument("--variant", default="small", choices=["default", "small"])
    # Executor strings are validated eagerly by EngineConfig against the
    # session registry (repro.runtime.session.EXECUTOR_REGISTRY); no
    # choices= here so parser construction stays import-light.
    warmup_p.add_argument("--executor", default="plan", metavar="EXECUTOR",
                          help="request executor from the session registry "
                               "(plan | interp | pool | process)")
    warmup_p.add_argument("--backend", default="thread", choices=["thread", "process"])
    warmup_p.add_argument("--json", action="store_true", help="print a JSON summary")

    serve_p = sub.add_parser(
        "serve-bench",
        help="drive concurrent load through the serving engine and report metrics")
    serve_p.add_argument("models", nargs="+",
                         help="model names to serve (e.g. squeezenet googlenet)")
    serve_p.add_argument("--variant", default="small", choices=["default", "small"])
    serve_p.add_argument("--requests", type=int, default=32,
                         help="requests per model (default 32)")
    serve_p.add_argument("--concurrency", type=int, default=8,
                         help="concurrent caller threads (default 8)")
    serve_p.add_argument("--max-batch", type=int, default=8,
                         help="micro-batcher max batch size (default 8)")
    serve_p.add_argument("--max-wait-ms", type=float, default=5.0,
                         help="micro-batcher max wait in ms (default 5)")
    serve_p.add_argument("--executor", default="plan", metavar="EXECUTOR",
                         help="request executor from the session registry "
                              "(plan | interp | pool | process)")
    serve_p.add_argument("--backend", default="thread", choices=["thread", "process"])
    serve_p.add_argument("--compare-naive", type=int, default=0, metavar="N",
                         help="also measure N naive compile-per-request calls per model")
    serve_p.add_argument("--json", action="store_true", help="print a JSON summary")

    trace_p = sub.add_parser(
        "trace",
        help="run N traced iterations and write a Perfetto-loadable "
             "trace.json + a metrics report")
    trace_p.add_argument("model", help="model name (e.g. squeezenet) or path")
    trace_p.add_argument("--variant", default="small", choices=["default", "small"])
    trace_p.add_argument("--runs", type=int, default=20,
                         help="traced iterations (default 20)")
    trace_p.add_argument("--warmup", type=int, default=2,
                         help="untraced warmup iterations (default 2)")
    trace_p.add_argument("--batch-size", type=int, default=1)
    trace_p.add_argument("--executor", default="plan", metavar="EXECUTOR",
                         help="session executor: plan (default, with "
                              "per-step spans), interp, or pool | process "
                              "(merged multi-worker trace with per-worker "
                              "pid/tid lanes)")
    trace_p.add_argument("-o", "--output", default="trace.json",
                         help="Chrome trace-event JSON output path "
                              "(default trace.json; load in "
                              "https://ui.perfetto.dev)")
    trace_p.add_argument("--metrics-out", default=None, metavar="PATH",
                         help="also write the Prometheus text exposition here")
    trace_p.add_argument("--top", type=int, default=15,
                         help="per-step table rows to print (default 15)")
    trace_p.add_argument("--json", action="store_true", help="print a JSON summary")

    bench_p = sub.add_parser(
        "bench-report",
        help="analyze a series of BENCH_exec.json artifacts and gate on "
             "perf-trajectory regressions")
    bench_p.add_argument("paths", nargs="+", metavar="PATH",
                         help="BENCH_exec.json files and/or directories of "
                              "them (e.g. a downloaded artifact history)")
    bench_p.add_argument("--threshold", type=float, default=0.10,
                         help="relative drop below the rolling baseline "
                              "that counts as a regression (default 0.10)")
    bench_p.add_argument("--window", type=int, default=3,
                         help="rolling-baseline width in entries (default 3)")
    bench_p.add_argument("--warn-only", action="store_true",
                         help="print regressions but exit 0 (soft gate)")
    bench_p.add_argument("--json", action="store_true",
                         help="print the report as JSON")

    def _add_qos_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--tenant", action="append", default=[],
                       metavar="NAME=WEIGHT[:QUOTA]",
                       help="register a tenant with a scheduling weight and "
                            "an optional artifact-cache quota (repeatable); "
                            "e.g. --tenant gold=3 --tenant free=1:2")
        p.add_argument("--max-queue-depth", type=int, default=256,
                       help="global admission-queue bound (503 beyond it)")
        p.add_argument("--tenant-queue", type=int, default=64,
                       help="per-tenant admission-queue bound (429 beyond it)")
        p.add_argument("--max-artifact-inflight", type=int, default=32,
                       help="per-artifact cap on in-flight admitted requests")
        p.add_argument("--deadline-s", type=float, default=None,
                       help="default per-request deadline budget in seconds")
        p.add_argument("--max-batch", type=int, default=8,
                       help="micro-batcher max batch size (default 8)")
        p.add_argument("--executor", default="plan", metavar="EXECUTOR",
                       help="request executor from the session registry "
                            "(plan | interp | pool | process)")
        p.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write a Chrome trace of the run here")

    gw_serve = sub.add_parser(
        "serve", help="serve zoo models over HTTP (asyncio gateway, foreground)")
    gw_serve.add_argument("models", nargs="+",
                          help="model names to serve (e.g. squeezenet bert)")
    gw_serve.add_argument("--variant", default="small",
                          choices=["default", "small"])
    gw_serve.add_argument("--host", default="127.0.0.1")
    gw_serve.add_argument("--port", type=int, default=8080,
                          help="listen port (0 = ephemeral; default 8080)")
    gw_serve.add_argument("--no-warmup", action="store_true",
                          help="skip pre-compiling the served models")
    _add_qos_args(gw_serve)

    load_p = sub.add_parser(
        "load",
        help="boot a gateway, drive open-loop multi-tenant load at it and "
             "print the per-tenant report (self-contained smoke/benchmark)")
    load_p.add_argument("models", nargs="+",
                        help="model names; tenants are assigned round-robin")
    load_p.add_argument("--variant", default="small",
                        choices=["default", "small"])
    load_p.add_argument("--duration", type=float, default=5.0,
                        help="offered-load window in seconds (default 5)")
    load_p.add_argument("--rate", type=float, default=30.0,
                        help="per-tenant Poisson arrival rate, rps (default 30)")
    load_p.add_argument("--seed", type=int, default=0)
    load_p.add_argument("--request-deadline-s", type=float, default=None,
                        help="X-Deadline-S attached to every request")
    load_p.add_argument("--json", action="store_true",
                        help="print the report as JSON")
    _add_qos_args(load_p)
    return parser


def _load_model(name_or_path: str, variant: str):
    from pathlib import Path

    from repro.ir.serialization import load_model
    from repro.models import build_model

    path = Path(name_or_path)
    if path.exists():
        return load_model(path)
    return build_model(name_or_path, variant=variant)


def _cmd_list() -> int:
    from repro.models import MODEL_REGISTRY

    for name, spec in MODEL_REGISTRY.items():
        print(f"{name:14s} {spec.description}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.graph import compute_metrics
    from repro.graph.metrics import format_table

    model = _load_model(args.model, args.variant)
    metrics = compute_metrics(model)
    print(format_table([metrics.as_row()]))
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    from repro.pipeline import PipelineConfig, ramiel_compile

    model = _load_model(args.model, args.variant)
    config = PipelineConfig(
        prune=not args.no_prune,
        clone=args.clone,
        batch_size=args.batch_size,
        switched_hyperclusters=args.switched,
        output_dir=args.output_dir,
        num_cores=args.cores,
    )
    result = ramiel_compile(model, config=config)
    summary = result.summary()
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        for key, value in summary.items():
            print(f"{key:24s} {value}")
        if result.parallel_module is not None:
            print(f"{'parallel module':24s} {result.parallel_module.path}")
        if result.sequential_module is not None:
            print(f"{'sequential module':24s} {result.sequential_module.path}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.analysis.speedup import measured_speedup
    from repro.serving import example_inputs

    model = _load_model(args.model, args.variant)
    inputs = example_inputs(model)
    stats = measured_speedup(model, inputs, backend=args.backend, repeats=args.repeats)
    for key, value in stats.items():
        print(f"{key:16s} {value:.4f}" if isinstance(value, float) else f"{key:16s} {value}")
    return 0


def _cmd_warmup(args: argparse.Namespace) -> int:
    from repro.serving import EngineConfig, InferenceEngine

    engine = InferenceEngine(EngineConfig(executor=args.executor,
                                          backend=args.backend))
    summaries = []
    try:
        for name in args.models:
            model = _load_model(name, args.variant)
            summaries.append(engine.warmup(model))
    finally:
        engine.shutdown()
    if args.json:
        print(json.dumps(summaries, indent=2))
    else:
        for summary in summaries:
            for key, value in summary.items():
                print(f"{key:18s} {value}")
            print()
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.analysis.reports import render_serving_report
    from repro.serving import (
        EngineConfig,
        InferenceEngine,
        drive_load,
        naive_throughput,
    )

    engine = InferenceEngine(EngineConfig(
        max_batch_size=args.max_batch,
        max_wait_s=args.max_wait_ms / 1e3,
        executor=args.executor,
        backend=args.backend,
    ))
    per_model = []
    try:
        models = [_load_model(name, args.variant) for name in args.models]
        for model in models:
            engine.warmup(model)  # exclude compilation from the measured window
        engine.metrics.reset()
        for name, model in zip(args.models, models):
            load = drive_load(engine, model, num_requests=args.requests,
                              concurrency=args.concurrency)
            row = {"model": name, "requests": load["requests"],
                   "engine_rps": round(load["rps"], 2)}
            if args.compare_naive > 0:
                naive = naive_throughput(model, num_requests=args.compare_naive,
                                         backend=args.backend)
                row["naive_rps"] = round(naive["rps"], 2)
                row["speedup"] = round(load["rps"] / naive["rps"], 1)
            per_model.append(row)
        snapshot = engine.metrics.snapshot()
        report = render_serving_report(engine.registry)
    finally:
        engine.shutdown()

    if args.json:
        print(json.dumps({"models": per_model, "metrics": snapshot}, indent=2))
    else:
        from repro.analysis.reports import format_rows

        print(format_rows(per_model))
        print()
        print(report)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.analysis.reports import format_rows
    from repro.observability import MetricsRegistry, Tracer
    from repro.runtime.session import create_session, validate_executor

    # Validate eagerly against the central registry: a typo'd executor
    # fails here with the known names, not deep inside session dispatch.
    try:
        validate_executor(args.executor, context="--executor")
    except ValueError as exc:
        print(f"ramiel trace: {exc}", file=sys.stderr)
        return 2
    from repro.serving import example_inputs

    model = _load_model(args.model, args.variant)
    feed = example_inputs(model, batch_size=args.batch_size)
    pooled = args.executor in ("pool", "process")
    tracer = Tracer()
    # Pooled executors take the tracer at construction so the process
    # backend's channels are instrumented before its workers fork; the
    # tracer stays disabled through warmup so only measured runs record.
    tracer.disable()
    session = create_session(model, executor=args.executor, tracer=tracer)
    registry = MetricsRegistry()
    session.publish_metrics(registry)
    runs = max(args.runs, 1)
    worker_drops: dict = {}
    try:
        for _ in range(max(args.warmup, 0)):
            session.run(feed)  # untraced warmup: specialize arena + layouts
        if session.pool is not None:
            session.pool.clear_worker_traces()
        tracer.clear()
        tracer.enable()
        for index in range(runs):
            # Request-shaped root spans so the exported trace shows the
            # nesting a served request would have: request -> session.run
            # -> per-plan-step spans (or per-worker execute spans on their
            # own pid/tid lanes for the pooled executors).
            with tracer.span("request", cat="request",
                             args={"iteration": str(index)}):
                session.run(feed)
        tracer.disable()
        if pooled:
            from repro.observability.merge import write_merged_trace

            buffers = session.worker_trace_buffers()
            merged = write_merged_trace(args.output, tracer, buffers,
                                        process_name=model.name)
            worker_drops = merged["metadata"]["worker_drops"]
        else:
            tracer.write_chrome_trace(args.output, process_name=model.name)
        exposition = registry.render_prometheus()
        stats = tracer.stats()
        step_rows = []
        plan_spans: dict = {}
        for event in tracer.events():
            if event.cat == "plan":
                plan_spans.setdefault(event.name, []).append(event.dur_ns)
        for name, durs in plan_spans.items():
            step_rows.append({
                "step": name,
                "count": len(durs),
                "total_ms": round(sum(durs) / 1e6, 3),
                "mean_ms": round(sum(durs) / len(durs) / 1e6, 4),
            })
        step_rows.sort(key=lambda row: row["total_ms"], reverse=True)
    finally:
        session.close()

    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(exposition)
    if args.json:
        summary = {
            "model": model.name,
            "runs": runs,
            "trace_path": args.output,
            "tracer": stats,
            "steps": step_rows,
        }
        if pooled:
            summary["worker_drops"] = worker_drops
        print(json.dumps(summary, indent=2))
        return 0
    print(f"model      {model.name}")
    print(f"executor   {args.executor}")
    print(f"runs       {runs}")
    print(f"trace      {args.output}  (load in https://ui.perfetto.dev)")
    print(f"spans      {stats['recorded']} recorded, {stats['dropped']} dropped")
    if pooled:
        drops = ", ".join(f"{worker}: {count}"
                          for worker, count in sorted(worker_drops.items()))
        print(f"workers    {len(worker_drops)} merged lanes "
              f"(drops — {drops})")
    if step_rows:
        print()
        print(f"-- slowest plan steps (top {min(args.top, len(step_rows))} "
              f"of {len(step_rows)}, by total time) --")
        print(format_rows(step_rows[:max(args.top, 1)]))
    print()
    print("-- metrics --")
    print(exposition, end="")
    return 0


def _cmd_bench_report(args: argparse.Namespace) -> int:
    from repro.observability.trajectory import (
        analyze_trajectory,
        load_trajectory,
        render_trend_table,
    )

    entries = load_trajectory(args.paths)
    if not entries:
        # An empty artifact history (first CI run, expired retention) is
        # not a regression; report it and let the gate pass.
        print("bench-report: no parsable BENCH_exec.json entries under "
              + ", ".join(args.paths))
        return 0
    try:
        report = analyze_trajectory(entries, threshold=args.threshold,
                                    window=args.window)
    except ValueError as exc:
        print(f"bench-report: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(render_trend_table(report))
    if report.ok:
        return 0
    if args.warn_only:
        print("bench-report: --warn-only set; not failing the gate",
              file=sys.stderr)
        return 0
    return 1


def _parse_tenants(specs: List[str], tenant_queue: int,
                   deadline_s: Optional[float]):
    """``NAME=WEIGHT[:QUOTA]`` flags into TenantConfig objects."""
    from repro.serving import TenantConfig

    tenants = []
    for spec in specs:
        name, sep, rest = spec.partition("=")
        if not sep or not name:
            raise ValueError(
                f"malformed --tenant {spec!r}; expected NAME=WEIGHT[:QUOTA]")
        weight_s, _, quota_s = rest.partition(":")
        tenants.append(TenantConfig(
            name=name, weight=float(weight_s),
            max_queue=tenant_queue,
            deadline_s=deadline_s,
            cache_quota=int(quota_s) if quota_s else None))
    return tuple(tenants)


def _gateway_stack(args: argparse.Namespace):
    """(engine, server, tracer, models) shared by the serve/load verbs."""
    from repro.gateway import GatewayConfig, GatewayServer
    from repro.observability import Tracer
    from repro.serving import EngineConfig, InferenceEngine, QoSConfig

    tenants = _parse_tenants(args.tenant, args.tenant_queue, args.deadline_s)
    qos = QoSConfig(tenants=tenants,
                    max_queue_depth=args.max_queue_depth,
                    max_artifact_inflight=args.max_artifact_inflight)
    tracer = Tracer() if args.trace_out else None
    engine = InferenceEngine(EngineConfig(
        max_batch_size=args.max_batch, executor=args.executor, qos=qos),
        tracer=tracer)
    models = {name: _load_model(name, args.variant) for name in args.models}
    server = GatewayServer(engine, models, GatewayConfig(
        host=getattr(args, "host", "127.0.0.1"),
        port=getattr(args, "port", 0)))
    return engine, server, tracer, models


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    engine, server, tracer, models = _gateway_stack(args)
    if not args.no_warmup:
        for name, model in models.items():
            summary = engine.warmup(model)
            print(f"warmed {name} in {summary['warmup_time_s']}s")

    async def _serve() -> None:
        await server.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGINT, stop.set)
            loop.add_signal_handler(signal.SIGTERM, stop.set)
        except NotImplementedError:  # pragma: no cover - non-unix loops
            pass
        print(f"ramiel gateway listening on "
              f"http://{server.config.host}:{server.port}")
        print(f"  models: {', '.join(sorted(models))}")
        print("  POST /v1/models/{name}/infer | GET /healthz | GET /metrics")
        await stop.wait()
        print("draining ...")
        completed = await server.shutdown()
        print("drain complete" if completed else
              "drain timed out with requests still in flight")

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler fallback
        pass
    finally:
        engine.shutdown()
        if tracer is not None and args.trace_out:
            tracer.write_chrome_trace(args.trace_out, process_name="gateway")
            print(f"trace      {args.trace_out}")
    return 0


def _cmd_load(args: argparse.Namespace) -> int:
    import asyncio

    from repro.gateway import GatewayThread, LoadSpec, run_load
    from repro.gateway.codec import encode_request
    from repro.serving import example_inputs

    engine, server, tracer, models = _gateway_stack(args)
    tenants = [t.name for t in engine.config.qos.tenants] or ["default"]
    model_names = list(models)
    specs = [
        LoadSpec(tenant=tenant, model=model_names[i % len(model_names)],
                 body=encode_request(
                     example_inputs(models[model_names[i % len(model_names)]])),
                 rate_rps=args.rate, deadline_s=args.request_deadline_s)
        for i, tenant in enumerate(tenants)
    ]
    drained = False
    try:
        for model in models.values():
            engine.warmup(model)
        with GatewayThread(server) as gateway:
            report = asyncio.run(run_load(
                "127.0.0.1", gateway.port, specs,
                duration_s=args.duration, seed=args.seed))
            drained = gateway.stop()
    finally:
        engine.shutdown()
        if tracer is not None and args.trace_out:
            tracer.write_chrome_trace(args.trace_out, process_name="gateway")

    if args.json:
        print(json.dumps({
            "duration_s": round(report.duration_s, 3),
            "drained": drained,
            "tenants": {name: rep.summary(report.duration_s)
                        for name, rep in report.tenants.items()},
        }, indent=2))
    else:
        print(report.render())
        print(f"\nduration   {report.duration_s:.2f}s")
        print(f"drained    {drained}")
        if args.trace_out:
            print(f"trace      {args.trace_out}")
    # The gate: every request got an HTTP answer and shutdown was clean.
    if report.total_dropped or not drained:
        print("load: FAILED (dropped requests or dirty shutdown)",
              file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (exposed as the ``ramiel`` console script)."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "compile":
        return _cmd_compile(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "warmup":
        return _cmd_warmup(args)
    if args.command == "serve-bench":
        return _cmd_serve_bench(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "bench-report":
        return _cmd_bench_report(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "load":
        return _cmd_load(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
