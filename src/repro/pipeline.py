"""The Ramiel end-to-end pipeline (Fig. 10).

``ONNX-like model -> [CP+DCE pruning] -> [cloning] -> Model2Graph ->
distance pass -> linear clustering -> cluster merging ->
[hyperclustering] -> parallel + sequential code generation``

:func:`ramiel_compile` runs the whole pipeline and returns a
:class:`RamielResult` bundling the clusterings, the generated modules, the
schedule prediction and compile-time statistics — everything the examples,
tests and benchmarks need.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
import warnings
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.analysis.speedup import ExperimentConfig
from repro.clustering import (
    build_hyperclusters,
    build_switched_hyperclusters,
    clone_cheap_producers,
    linear_clustering,
    merge_clusters_fixpoint,
)
from repro.clustering.cluster import Clustering
from repro.clustering.schedule import ScheduleResult, ScheduleSimulator, SimulationConfig
from repro.clustering.validation import validate_clustering
from repro.codegen import (
    GeneratedModule,
    generate_parallel_module,
    generate_parallel_source,
    generate_sequential_module,
    generate_sequential_source,
)
from repro.graph.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.graph.dataflow import DataflowGraph, model_to_dataflow
from repro.graph.parallelism import ParallelismReport, potential_parallelism
from repro.ir.model import Model
from repro.passes import optimize_model
from repro.runtime.plan import ExecutionPlan, PlanError


@dataclasses.dataclass
class PipelineConfig:
    """Configuration of one Ramiel compilation."""

    #: apply constant propagation + dead-code elimination before clustering
    prune: bool = True
    #: apply restricted task cloning before clustering
    clone: bool = False
    #: inference batch size; > 1 triggers hyperclustering
    batch_size: int = 1
    #: use switched (load-balanced) hyperclusters when batch_size > 1
    switched_hyperclusters: bool = False
    #: generate code (can be disabled for analysis-only runs)
    generate_code: bool = True
    #: build an :class:`~repro.runtime.plan.ExecutionPlan` for the optimized
    #: model (the serving engine's single-process fast path)
    build_plan: bool = True
    #: directory for the generated modules (temporary when omitted)
    output_dir: Optional[str] = None
    #: static cost model
    cost_model: CostModel = dataclasses.field(default_factory=lambda: DEFAULT_COST_MODEL)
    #: schedule-simulation parameters
    num_cores: int = 12
    message_latency: float = 4.0
    per_cluster_overhead: float = 20.0
    #: validate clustering invariants before code generation
    validate: bool = True


@dataclasses.dataclass
class RamielResult:
    """Everything produced by one run of the Ramiel pipeline."""

    model: Model
    optimized_model: Model
    dataflow_graph: DataflowGraph
    parallelism: ParallelismReport
    clustering_lc: Clustering
    clustering: Clustering
    schedule: ScheduleResult
    sequential_module: Optional[GeneratedModule]
    parallel_module: Optional[GeneratedModule]
    compile_time_s: float
    stage_times_s: Dict[str, float]
    pruning_stats: Optional[dict]
    cloning_report: Optional[object]
    execution_plan: Optional[ExecutionPlan] = None

    @property
    def predicted_speedup(self) -> float:
        """Speedup predicted by the schedule simulation."""
        return self.schedule.speedup

    @property
    def num_clusters(self) -> int:
        """Number of clusters after merging (and hyperclustering)."""
        return self.clustering.num_clusters

    def run_sequential(self, inputs: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Execute the generated sequential module."""
        from repro.runtime.process_runtime import run_sequential_module

        if self.sequential_module is None:
            raise RuntimeError("pipeline was run with generate_code=False")
        return run_sequential_module(self.sequential_module,
                                     inputs, self.optimized_model.graph.initializers)

    def run_parallel(self, inputs: Mapping[str, np.ndarray],
                     backend: str = "thread") -> Dict[str, np.ndarray]:
        """Execute the generated parallel module with the chosen backend."""
        from repro.runtime.process_runtime import execute_generated_module

        if self.parallel_module is None:
            raise RuntimeError("pipeline was run with generate_code=False")
        return execute_generated_module(self.parallel_module, inputs,
                                        self.optimized_model.graph.initializers,
                                        backend=backend)

    def plan(self) -> ExecutionPlan:
        """The compiled artifact's execution plan (built on first access when
        the pipeline ran with ``build_plan=False`` or plan building failed)."""
        if self.execution_plan is None:
            self.execution_plan = ExecutionPlan(self.optimized_model)
        return self.execution_plan

    def session(self, executor: str = "plan", timeout_s: float = 300.0):
        """A :class:`~repro.runtime.session.Session` over this artifact.

        The unified execution surface: ``session().run(feed)`` replaces
        ``run_planned``, and ``session().bind()`` gives the IOBinding
        zero-alloc hot path.  ``executor`` is any name from
        :func:`repro.runtime.session.known_executors`.
        """
        from repro.runtime.session import create_session

        return create_session(self, executor=executor, timeout_s=timeout_s)

    def run_planned(self, inputs: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Deprecated: use :meth:`session` (``session().run(inputs)``)."""
        warnings.warn(
            "RamielResult.run_planned() is deprecated; use "
            "RamielResult.session().run() instead",
            DeprecationWarning, stacklevel=2)
        return self.plan().run(inputs)

    def summary(self) -> dict:
        """Compact summary used by the CLI and the examples."""
        return {
            "model": self.model.name,
            "nodes": self.optimized_model.num_nodes,
            "potential_parallelism": round(self.parallelism.parallelism, 2),
            "clusters_before_merging": self.clustering_lc.num_clusters,
            "clusters": self.clustering.num_clusters,
            "predicted_speedup": round(self.predicted_speedup, 2),
            "compile_time_s": round(self.compile_time_s, 3),
        }


# ---------------------------------------------------------------------------
# Artifact fingerprinting (used by the serving layer's compiled-artifact cache)
# ---------------------------------------------------------------------------
#: metadata key under which a computed model fingerprint is memoized.
_FINGERPRINT_METADATA_KEY = "ramiel.fingerprint"


def model_fingerprint(model: Model) -> str:
    """Stable content hash of a model: graph structure plus a weights digest.

    Two models with identical nodes, attributes, input/output signatures and
    initializer contents produce the same fingerprint, regardless of object
    identity.  The result is memoized in ``model.metadata`` because serving
    computes it on every request; callers that mutate a graph in place after
    fingerprinting must drop the ``"ramiel.fingerprint"`` metadata key.
    """
    cached = model.metadata.get(_FINGERPRINT_METADATA_KEY)
    if cached:
        return cached

    digest = hashlib.sha256()
    digest.update(model.name.encode())
    digest.update(str(model.opset_version).encode())
    graph = model.graph
    for node in graph.nodes:
        digest.update(json.dumps(node.to_dict(), sort_keys=True, default=str).encode())
    for info in list(graph.inputs) + list(graph.outputs):
        digest.update(json.dumps(info.to_dict(), sort_keys=True, default=str).encode())
    for name in sorted(graph.initializers):
        array = graph.initializers[name]
        digest.update(name.encode())
        digest.update(str(array.dtype).encode())
        digest.update(str(array.shape).encode())
        digest.update(np.ascontiguousarray(array).tobytes())

    fingerprint = digest.hexdigest()
    model.metadata[_FINGERPRINT_METADATA_KEY] = fingerprint
    return fingerprint


def config_fingerprint(config: PipelineConfig) -> str:
    """Stable hash of the compilation-relevant fields of a :class:`PipelineConfig`.

    ``output_dir``, ``generate_code`` and ``build_plan`` are deliberately
    excluded: they change where/whether artifacts are materialized but not
    what is compiled, so artifacts compiled under different output
    directories can share a cache entry.  The cost model participates through its ``repr`` — two configs
    with behaviourally identical but differently-ordered cost tables hash
    differently, which only costs a spurious cache miss, never a wrong hit.
    """
    payload = repr((
        config.prune,
        config.clone,
        config.batch_size,
        config.switched_hyperclusters,
        config.num_cores,
        config.message_latency,
        config.per_cluster_overhead,
        config.validate,
        repr(config.cost_model),
    ))
    return hashlib.sha256(payload.encode()).hexdigest()


def artifact_fingerprint(model: Model, config: Optional[PipelineConfig] = None,
                         input_signature: Optional[Tuple] = None) -> str:
    """Combined cache key for one compiled artifact.

    The serving layer keys its compiled-artifact cache by
    ``(model fingerprint, config fingerprint, input signature)``; this helper
    collapses the triple into a single hex digest for logging and file names.
    """
    digest = hashlib.sha256()
    digest.update(model_fingerprint(model).encode())
    digest.update(config_fingerprint(config or PipelineConfig()).encode())
    if input_signature is not None:
        digest.update(repr(input_signature).encode())
    return digest.hexdigest()


class RamielPipeline:
    """Object-oriented wrapper over :func:`ramiel_compile` (Fig. 10's tool)."""

    def __init__(self, config: Optional[PipelineConfig] = None) -> None:
        self.config = config or PipelineConfig()

    def compile(self, model: Model) -> RamielResult:
        """Run the full pipeline on a model."""
        return ramiel_compile(model, config=self.config)


def ramiel_compile(model: Model, config: Optional[PipelineConfig] = None,
                   **overrides) -> RamielResult:
    """Run the Ramiel pipeline on an IR model.

    ``overrides`` are applied on top of ``config`` (or the defaults), e.g.
    ``ramiel_compile(model, batch_size=4, clone=True)``.
    """
    if config is None:
        config = PipelineConfig(**overrides)
    elif overrides:
        config = dataclasses.replace(config, **overrides)

    stage_times: Dict[str, float] = {}
    total_start = time.perf_counter()

    # 1. Optional pruning (CP + DCE via the pass manager).
    pruning_stats = None
    optimized = model
    if config.prune:
        start = time.perf_counter()
        optimized, pruning_stats = optimize_model(model)
        stage_times["prune"] = time.perf_counter() - start

    # 2. Optional restricted cloning.
    cloning_report = None
    if config.clone:
        start = time.perf_counter()
        optimized, cloning_report = clone_cheap_producers(optimized,
                                                          cost_model=config.cost_model)
        stage_times["clone"] = time.perf_counter() - start

    # 3. Model2Graph conversion + distance pass + potential parallelism.
    start = time.perf_counter()
    dfg = model_to_dataflow(optimized, cost_model=config.cost_model)
    parallelism = potential_parallelism(dfg, cost_model=config.cost_model)
    stage_times["graph"] = time.perf_counter() - start

    # 4. Linear clustering + merging.
    start = time.perf_counter()
    lc = linear_clustering(dfg)
    merged = merge_clusters_fixpoint(lc)
    stage_times["clustering"] = time.perf_counter() - start

    # 5. Optional hyperclustering for batch sizes > 1.
    clustering = merged
    if config.batch_size > 1:
        start = time.perf_counter()
        builder = (build_switched_hyperclusters if config.switched_hyperclusters
                   else build_hyperclusters)
        clustering = builder(merged, config.batch_size)
        stage_times["hyperclustering"] = time.perf_counter() - start

    if config.validate:
        validate_clustering(clustering)

    # 6. Schedule prediction.
    start = time.perf_counter()
    simulator = ScheduleSimulator(SimulationConfig(
        num_cores=config.num_cores,
        message_latency=config.message_latency,
        per_cluster_overhead=config.per_cluster_overhead,
    ))
    schedule = simulator.simulate(clustering)
    stage_times["simulate"] = time.perf_counter() - start

    # 7. Execution-plan build: resolve handlers/attributes into bound
    #    closures and precompute the buffer-arena liveness for the
    #    interpreter-replacing hot path.  Best-effort — a model with ops the
    #    numpy runtime cannot execute still compiles (the plan is rebuilt
    #    lazily, and fails with the same diagnostic, if actually requested).
    execution_plan = None
    if config.build_plan:
        start = time.perf_counter()
        try:
            execution_plan = ExecutionPlan(optimized)
        except PlanError:
            execution_plan = None
        stage_times["plan"] = time.perf_counter() - start

    # 8. Code generation (sequential + parallel), batch-size-1 graphs only:
    #    hyperclusters describe replicated graphs whose code generation would
    #    require replicated inputs; the paper also generates code per sample.
    sequential_module = None
    parallel_module = None
    if config.generate_code:
        start = time.perf_counter()
        sequential_module = generate_sequential_module(optimized, directory=config.output_dir)
        codegen_clustering = merged
        parallel_module = generate_parallel_module(optimized, codegen_clustering,
                                                   directory=config.output_dir)
        stage_times["codegen"] = time.perf_counter() - start

    compile_time = time.perf_counter() - total_start
    return RamielResult(
        model=model,
        optimized_model=optimized,
        dataflow_graph=dfg,
        parallelism=parallelism,
        clustering_lc=lc,
        clustering=clustering,
        schedule=schedule,
        sequential_module=sequential_module,
        parallel_module=parallel_module,
        compile_time_s=compile_time,
        stage_times_s=stage_times,
        pruning_stats=pruning_stats,
        cloning_report=cloning_report,
        execution_plan=execution_plan,
    )
